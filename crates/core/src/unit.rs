//! The scatter-add unit: combining store, CAM, and pipelined functional unit.

use std::collections::VecDeque;

use fxhash::FxHashMap;
use sa_faults::{FaultInjector, FaultKind, ResilienceStats};
use sa_sim::{
    combine, Addr, Cycle, MemOp, MemRequest, MemResponse, Origin, ReqId, SaUnitConfig, ScalarKind,
    ScatterOp,
};
use sa_telemetry::{OccClass, OccupancyStats, ReqStage, ReqTracer};

/// A read or write the unit sends toward the cache/DRAM behind it
/// (steps b and 7 of Figure 4b).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum ToMem {
    /// Fetch the current value of `addr` (step b: first request to an
    /// address not already being combined).
    Read {
        /// Id of the scatter request heading the address chain. Responses
        /// are matched by address, so this exists purely to attribute the
        /// downstream memory traffic to its originating request.
        id: ReqId,
        /// Word address to fetch.
        addr: Addr,
    },
    /// Write the finished sum out (step 7: no more pending additions).
    Write {
        /// Id of the scatter request whose addition produced the final sum.
        id: ReqId,
        /// Word address to store to.
        addr: Addr,
        /// The computed sum.
        bits: u64,
    },
}

impl ToMem {
    /// The target address of this memory operation.
    pub fn addr(&self) -> Addr {
        match self {
            ToMem::Read { addr, .. } | ToMem::Write { addr, .. } => *addr,
        }
    }
}

/// Counters for one scatter-add unit.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SaStats {
    /// Scatter requests accepted into the combining store.
    pub accepted: u64,
    /// Requests that found their address already in flight (no memory read
    /// issued — the combining benefit).
    pub combined: u64,
    /// Current-value reads issued to memory.
    pub reads_issued: u64,
    /// Final sums written to memory.
    pub writes_issued: u64,
    /// Results fed straight back into the FU for a pending same-address
    /// addition (step d chaining).
    pub chained: u64,
    /// Submissions rejected because the combining store was full.
    pub stalled_full: u64,
    /// Fetch-op requests (the §3.3 parallel fetch-and-op extension).
    pub fetch_ops: u64,
    /// Sum over ticks of occupied entries (divide by cycles for average).
    pub occupancy_integral: u64,
    /// Busy/blocked/idle cycle account (FU pipeline active / entries
    /// waiting on memory / empty), with `saturated` counting cycles the
    /// combining store was full.
    pub occ: OccupancyStats,
}

impl SaStats {
    /// Merge another unit's counters (for aggregating across banks).
    pub fn merge(&mut self, o: SaStats) {
        self.accepted += o.accepted;
        self.combined += o.combined;
        self.reads_issued += o.reads_issued;
        self.writes_issued += o.writes_issued;
        self.chained += o.chained;
        self.stalled_full += o.stalled_full;
        self.fetch_ops += o.fetch_ops;
        self.occupancy_integral += o.occupancy_integral;
        self.occ.merge(o.occ);
    }

    /// Record these counters into a telemetry scope.
    pub fn record(&self, scope: &mut sa_telemetry::Scope<'_>) {
        scope.counter("accepted", self.accepted);
        scope.counter("combined", self.combined);
        scope.counter("reads_issued", self.reads_issued);
        scope.counter("writes_issued", self.writes_issued);
        scope.counter("chained", self.chained);
        scope.counter("stalled_full", self.stalled_full);
        scope.counter("fetch_ops", self.fetch_ops);
        scope.counter("occupancy_integral", self.occupancy_integral);
        self.occ.record(scope);
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EntryState {
    /// Head of an address chain: a read for the current value is in flight.
    WaitingValue,
    /// Waiting for an earlier addition to the same address to finish.
    Pending,
    /// Its addition is in the FU pipeline.
    InFu,
}

#[derive(Copy, Clone, Debug)]
struct CsEntry {
    addr: Addr,
    bits: u64,
    kind: ScalarKind,
    op: ScatterOp,
    fetch: bool,
    id: ReqId,
    origin: Origin,
    state: EntryState,
    /// Fault-injected stall: `(started, until)`. While `until` is in the
    /// future the entry refuses to issue its addition; the watchdog
    /// ([`ScatterAddUnit::cancel_stalls_older_than`]) may expire it early.
    stall: Option<(Cycle, Cycle)>,
}

#[derive(Copy, Clone, Debug)]
struct FuOp {
    done_at: Cycle,
    slot: usize,
    old_bits: u64,
}

/// The scatter-add unit of §3.2 (Figure 4b).
///
/// One unit sits in front of each stream-cache bank. Scatter requests are
/// buffered in the *combining store*; a CAM search over the store
/// (a) suppresses duplicate current-value reads for addresses already being
/// combined and (b) chains pending additions through the functional unit as
/// each sum completes, guaranteeing atomicity without locks.
///
/// Interaction contract (driven by [`NodeMemSys`](crate::NodeMemSys) or the
/// [`SensitivityRig`](crate::SensitivityRig)):
///
/// 1. [`try_submit`](Self::try_submit) a scatter request (stalls when full);
/// 2. pop [`ToMem`] operations via [`pop_to_mem`](Self::pop_to_mem) and
///    perform them against the cache/memory behind the unit;
/// 3. feed fetched values back with [`on_value`](Self::on_value);
/// 4. call [`tick`](Self::tick) once per cycle;
/// 5. collect per-request completion acknowledgements with
///    [`pop_ack`](Self::pop_ack) (step 6: "an acknowledgment signal is sent
///    to the address generator unit" once the sum is computed).
#[derive(Debug)]
pub struct ScatterAddUnit {
    cfg: SaUnitConfig,
    entries: Vec<Option<CsEntry>>,
    /// Occupied combining-store entries (mirror of the `Some` count in
    /// `entries`, kept so `occupancy`/`can_accept` are O(1)).
    occupied: usize,
    /// The CAM: word address → (entries holding it, entries of those in the
    /// FU). The hardware searches all entries associatively in one cycle;
    /// the model gets the same answer from this index without the scan.
    addr_index: FxHashMap<u64, (u32, u32)>,
    fu: VecDeque<FuOp>,
    values_in: VecDeque<(Addr, u64)>,
    to_mem: VecDeque<ToMem>,
    acks: VecDeque<MemResponse>,
    stats: SaStats,
    /// Combining-store stall schedule (inert without a fault plan);
    /// consulted once per entry at its first FU-issue attempt.
    faults: FaultInjector,
    resilience: ResilienceStats,
}

impl ScatterAddUnit {
    /// Create a unit with `cfg.cs_entries` combining-store slots and a fully
    /// pipelined FU of latency `cfg.fu_latency`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero combining-store entries.
    pub fn new(cfg: SaUnitConfig) -> ScatterAddUnit {
        assert!(
            cfg.cs_entries > 0,
            "combining store needs at least one entry"
        );
        ScatterAddUnit {
            entries: vec![None; cfg.cs_entries],
            occupied: 0,
            addr_index: FxHashMap::default(),
            fu: VecDeque::with_capacity(cfg.cs_entries),
            values_in: VecDeque::with_capacity(cfg.cs_entries),
            to_mem: VecDeque::with_capacity(2 * cfg.cs_entries),
            acks: VecDeque::with_capacity(2 * cfg.cs_entries),
            stats: SaStats::default(),
            faults: FaultInjector::none(),
            resilience: ResilienceStats::default(),
            cfg,
        }
    }

    /// Install this unit's combining-store stall schedule (taken from a
    /// fault plan by the owning node, which knows the unit's identity).
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Resilience counters: injected stalls and watchdog timeouts. All zero
    /// unless a fault injector is installed.
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.resilience
    }

    /// Watchdog: expire any fault-injected stall that has lasted at least
    /// `timeout` cycles, so a stuck entry re-issues next tick instead of
    /// holding its address chain (and the store slot) indefinitely. A no-op
    /// without an active fault schedule.
    pub fn cancel_stalls_older_than(&mut self, now: Cycle, timeout: u64) {
        if !self.faults.is_active() {
            return;
        }
        for e in self.entries.iter_mut().flatten() {
            if let Some((started, until)) = e.stall {
                if until > now && now.since(started) >= timeout {
                    e.stall = Some((started, now));
                    self.resilience.cs_timeouts += 1;
                }
            }
        }
    }

    /// Additions currently in flight in the functional-unit pipeline.
    pub fn fu_depth(&self) -> usize {
        self.fu.len()
    }

    /// Combining-store entries currently occupied.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.occupied,
            self.entries.iter().filter(|e| e.is_some()).count()
        );
        self.occupied
    }

    /// Whether a new scatter request would be accepted right now.
    pub fn can_accept(&self) -> bool {
        self.occupied < self.entries.len()
    }

    /// Submit a scatter request (step 1 of Figure 4a).
    ///
    /// # Errors
    ///
    /// Returns the request back when the combining store is full — "if no
    /// such entry exists, the scatter-add operation stalls until an entry is
    /// freed".
    ///
    /// # Panics
    ///
    /// Panics if the request is not a [`MemOp::Scatter`]; plain reads and
    /// writes bypass the unit by design.
    pub fn try_submit(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let MemOp::Scatter {
            bits,
            kind,
            op,
            fetch,
        } = req.op
        else {
            panic!("non-scatter request routed into the scatter-add unit");
        };
        if !self.can_accept() {
            self.stats.stalled_full += 1;
            return Err(req);
        }
        let slot = self
            .entries
            .iter()
            .position(|e| e.is_none())
            .expect("occupied < len");
        // CAM search (step a): is this address already being combined?
        let counts = self.addr_index.entry(req.addr.0).or_insert((0, 0));
        let in_flight = counts.0 > 0;
        counts.0 += 1;
        debug_assert_eq!(
            in_flight,
            self.entries.iter().flatten().any(|e| e.addr == req.addr)
        );
        let state = if in_flight {
            self.stats.combined += 1;
            EntryState::Pending
        } else {
            self.to_mem.push_back(ToMem::Read {
                id: req.id,
                addr: req.addr,
            });
            self.stats.reads_issued += 1;
            EntryState::WaitingValue
        };
        self.entries[slot] = Some(CsEntry {
            addr: req.addr,
            bits,
            kind,
            op,
            fetch,
            id: req.id,
            origin: req.origin,
            state,
            stall: None,
        });
        self.occupied += 1;
        self.stats.accepted += 1;
        if fetch {
            self.stats.fetch_ops += 1;
        }
        Ok(())
    }

    /// [`try_submit`](Self::try_submit), stamping the request's
    /// combining-store entry time into `tracer` on acceptance.
    ///
    /// # Errors
    ///
    /// Returns the request back when the combining store is full.
    ///
    /// # Panics
    ///
    /// Panics if the request is not a [`MemOp::Scatter`].
    pub fn try_submit_traced(
        &mut self,
        req: MemRequest,
        now: Cycle,
        tracer: &mut ReqTracer,
    ) -> Result<(), MemRequest> {
        let id = req.id;
        let r = self.try_submit(req);
        if r.is_ok() {
            tracer.stamp(id, ReqStage::CombStore, now.raw());
        }
        r
    }

    /// Feed a current value fetched from memory back into the unit
    /// (steps 4–5, c of Figure 4b).
    pub fn on_value(&mut self, addr: Addr, bits: u64) {
        self.values_in.push_back((addr, bits));
    }

    /// Advance one cycle: retire at most one FU result and issue at most one
    /// new addition into the FU pipeline.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_traced(now, &mut ReqTracer::off());
    }

    /// [`tick`](Self::tick), stamping each request's entry into the FU
    /// pipeline into `tracer`.
    pub fn tick_traced(&mut self, now: Cycle, tracer: &mut ReqTracer) {
        self.stats.occupancy_integral += self.occupancy() as u64;
        let (class, at_capacity) = self.occ_state();
        self.stats.occ.cycle(class, at_capacity);

        // Retire a completed addition (needs a to_mem slot in the worst
        // case, which the unbounded queue always has; the *node* applies
        // back-pressure by draining it at the cache port rate).
        if self.fu.front().is_some_and(|op| op.done_at <= now) {
            let op = self.fu.pop_front().expect("front checked");
            let entry = self.entries[op.slot].take().expect("FU op for free slot");
            debug_assert_eq!(entry.state, EntryState::InFu);
            self.occupied -= 1;
            let sum = combine(op.old_bits, entry.bits, entry.kind, entry.op);
            // Acknowledge the original request (step 6); fetch-ops carry the
            // pre-op value back (§3.3 extension).
            self.acks.push_back(MemResponse {
                id: entry.id,
                addr: entry.addr,
                bits: if entry.fetch { op.old_bits } else { 0 },
                origin: entry.origin,
                at: now,
            });
            // Step d: check the store once more for the same address. The
            // CAM index answers without scanning: entries on this address
            // that are not in the FU are exactly the pending ones.
            let counts = self
                .addr_index
                .get_mut(&entry.addr.0)
                .expect("retiring entry is indexed");
            counts.0 -= 1;
            counts.1 -= 1;
            let has_pending = counts.0 - counts.1 > 0;
            if counts.0 == 0 {
                self.addr_index.remove(&entry.addr.0);
            }
            debug_assert_eq!(
                has_pending,
                self.entries
                    .iter()
                    .flatten()
                    .any(|e| e.addr == entry.addr && e.state != EntryState::InFu)
            );
            if has_pending {
                // "The newly computed sum acts as a returned memory value."
                self.values_in.push_front((entry.addr, sum));
                self.stats.chained += 1;
            } else {
                self.to_mem.push_back(ToMem::Write {
                    id: entry.id,
                    addr: entry.addr,
                    bits: sum,
                });
                self.stats.writes_issued += 1;
            }
        }

        // Issue one returned value into the FU (the FU accepts one new
        // addition per cycle and is fully pipelined).
        if let Some((addr, bits)) = self.values_in.pop_front() {
            let slot = self
                .entries
                .iter()
                .position(|e| {
                    e.as_ref().is_some_and(|e| {
                        e.addr == addr
                            && (e.state == EntryState::WaitingValue
                                || e.state == EntryState::Pending)
                    })
                })
                .unwrap_or_else(|| panic!("value for {addr} with no waiting entry"));
            let e = self.entries[slot].as_mut().expect("position found");
            // Fault schedule: the entry's first issue attempt may stall it.
            // A stalled entry keeps its value circulating through the issue
            // queue (one rotation per cycle, occupying this cycle's issue
            // slot) until the stall expires or the watchdog cancels it, so
            // the value is never lost and fast-forward stays pinned.
            if self.faults.is_active() && e.stall.is_none() {
                if let Some(FaultKind::CsStall { cycles }) = self.faults.next() {
                    e.stall = Some((now, now + cycles));
                    self.resilience.cs_stalls += 1;
                }
            }
            if e.stall.is_some_and(|(_, until)| until > now) {
                self.values_in.push_back((addr, bits));
                return;
            }
            e.state = EntryState::InFu;
            self.addr_index
                .get_mut(&addr.0)
                .expect("issuing entry is indexed")
                .1 += 1;
            tracer.stamp(e.id, ReqStage::FuPipe, now.raw());
            self.fu.push_back(FuOp {
                done_at: now + u64::from(self.cfg.fu_latency),
                slot,
                old_bits: bits,
            });
        }
    }

    /// Next outgoing memory operation, if the consumer can take it.
    pub fn pop_to_mem(&mut self) -> Option<ToMem> {
        self.to_mem.pop_front()
    }

    /// Peek the next outgoing memory operation without removing it.
    pub fn peek_to_mem(&self) -> Option<&ToMem> {
        self.to_mem.front()
    }

    /// Pop the next outgoing memory operation only if `accept` commits to it
    /// — the single-touch replacement for `peek_to_mem().copied()` + re-pop.
    pub fn pop_to_mem_if<F: FnMut(&ToMem) -> bool>(&mut self, mut accept: F) -> Option<ToMem> {
        if accept(self.to_mem.front()?) {
            self.to_mem.pop_front()
        } else {
            None
        }
    }

    /// Next completion acknowledgement (ack per scatter request, carrying
    /// the pre-op value for fetch-ops).
    pub fn pop_ack(&mut self) -> Option<MemResponse> {
        self.acks.pop_front()
    }

    /// Whether the unit holds no work at all.
    pub fn is_idle(&self) -> bool {
        self.occupied == 0
            && self.fu.is_empty()
            && self.values_in.is_empty()
            && self.to_mem.is_empty()
            && self.acks.is_empty()
    }

    /// Earliest future cycle at which a tick can change this unit's state
    /// *on its own*: a queued returned value issues next cycle; otherwise
    /// the oldest FU operation retires at its `done_at` (the FU pushes in
    /// submission order with a constant latency, so the front is earliest).
    ///
    /// Deliberately **excludes** the outgoing `to_mem`/`acks` queues: those
    /// only move when the surrounding node or rig drains them, so they are
    /// the caller's events, not this unit's. A caller that still has
    /// undrained output must not sleep on this horizon alone.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.values_in.is_empty() {
            return Some(now + 1);
        }
        self.fu.front().map(|op| op.done_at.max(now + 1))
    }

    /// Classify the unit's state at the start of a cycle for occupancy
    /// accounting: FU pipeline or issue queue active → busy; entries (or
    /// undrained output) waiting on another resource → blocked; else idle.
    /// At capacity when the combining store would reject a submission.
    ///
    /// The same predicate serves the per-cycle tick and the bulk
    /// fast-forward fold: a skippable window freezes exactly this state, so
    /// both paths account identically.
    fn occ_state(&self) -> (OccClass, bool) {
        let class = if !self.fu.is_empty() || !self.values_in.is_empty() {
            OccClass::Busy
        } else if self.occupied > 0 || !self.to_mem.is_empty() || !self.acks.is_empty() {
            OccClass::Blocked
        } else {
            OccClass::Idle
        };
        (class, !self.can_accept())
    }

    /// Fold `skipped` provably-idle cycles (fast-forward) into the unit's
    /// per-cycle accounting so the stats stay byte-identical with skipping
    /// off: the occupancy integral and busy/blocked/idle account accrue at
    /// the frozen state, and when the caller held a rejected request it
    /// would have retried (and been refused) every skipped cycle, the
    /// full-stall counter accrues too.
    pub fn skip_cycles(&mut self, now: Cycle, skipped: u64, attempting_submit: bool) {
        debug_assert!(
            self.next_event(now).is_none_or(|t| t > now + skipped),
            "fast-forward skipped past a scatter-add unit event"
        );
        self.stats.occupancy_integral += self.occupied as u64 * skipped;
        let (class, at_capacity) = self.occ_state();
        self.stats.occ.skip(skipped, class, at_capacity);
        if attempting_submit {
            debug_assert!(!self.can_accept(), "a submit would have succeeded");
            self.stats.stalled_full += skipped;
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SaStats {
        self.stats
    }

    /// The unit's configuration.
    pub fn config(&self) -> SaUnitConfig {
        self.cfg
    }
}

impl sa_telemetry::Inspectable for ScatterAddUnit {
    fn probe_kind(&self) -> &'static str {
        "scatter_add_unit"
    }

    fn probe_json(&self) -> sa_telemetry::Json {
        use sa_telemetry::Json;
        let mut o = Json::obj();
        o.push("cs_occupancy", Json::UInt(self.occupied as u64));
        o.push("cs_entries", Json::UInt(self.entries.len() as u64));
        o.push("cam_addrs", Json::UInt(self.addr_index.len() as u64));
        o.push("fu_depth", Json::UInt(self.fu.len() as u64));
        o.push("values_in", Json::UInt(self.values_in.len() as u64));
        o.push("to_mem", Json::UInt(self.to_mem.len() as u64));
        o.push("acks", Json::UInt(self.acks.len() as u64));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(entries: usize, fu_latency: u32) -> ScatterAddUnit {
        ScatterAddUnit::new(SaUnitConfig {
            cs_entries: entries,
            fu_latency,
        })
    }

    fn sa_req(id: ReqId, word: u64, val: i64) -> MemRequest {
        MemRequest {
            id,
            addr: Addr::from_word_index(word),
            op: MemOp::Scatter {
                bits: val as u64,
                kind: ScalarKind::I64,
                op: ScatterOp::Add,
                fetch: false,
            },
            origin: Origin::AddrGen { node: 0, ag: 0 },
        }
    }

    /// Drive the unit against an ideal 1-cycle memory until idle; returns
    /// the final memory image and the number of cycles taken.
    fn run_to_idle(u: &mut ScatterAddUnit, mem: &mut std::collections::HashMap<u64, u64>) -> u64 {
        let mut now = Cycle(0);
        for _ in 0..100_000 {
            now += 1;
            u.tick(now);
            while let Some(op) = u.pop_to_mem() {
                match op {
                    ToMem::Read { addr, .. } => {
                        let bits = mem.get(&addr.word_index()).copied().unwrap_or(0);
                        u.on_value(addr, bits);
                    }
                    ToMem::Write { addr, bits, .. } => {
                        mem.insert(addr.word_index(), bits);
                    }
                }
            }
            while u.pop_ack().is_some() {}
            if u.is_idle() {
                return now.raw();
            }
        }
        panic!("unit did not drain");
    }

    #[test]
    fn single_add_reads_adds_writes() {
        let mut u = unit(8, 4);
        let mut mem = std::collections::HashMap::new();
        mem.insert(5u64, 10u64);
        u.try_submit(sa_req(1, 5, 7)).unwrap();
        let s = u.stats();
        assert_eq!(
            s.reads_issued, 1,
            "first request issues a current-value read"
        );
        run_to_idle(&mut u, &mut mem);
        assert_eq!(mem[&5] as i64, 17);
        assert_eq!(u.stats().writes_issued, 1);
        assert_eq!(u.stats().chained, 0);
    }

    #[test]
    fn same_address_requests_combine() {
        let mut u = unit(8, 4);
        let mut mem = std::collections::HashMap::new();
        for i in 0..5 {
            u.try_submit(sa_req(i, 9, 1)).unwrap();
        }
        let s = u.stats();
        assert_eq!(s.reads_issued, 1, "only the chain head reads memory");
        assert_eq!(s.combined, 4);
        run_to_idle(&mut u, &mut mem);
        assert_eq!(mem[&9] as i64, 5);
        assert_eq!(
            u.stats().chained,
            4,
            "four sums fed back without memory traffic"
        );
        assert_eq!(u.stats().writes_issued, 1, "one final write");
    }

    #[test]
    fn distinct_addresses_pipeline_through_fu() {
        // With FU latency 4 and 8 distinct addresses, additions overlap: the
        // whole batch must take far less than 8 × (4 + overheads).
        let mut u = unit(8, 4);
        let mut mem = std::collections::HashMap::new();
        for i in 0..8 {
            u.try_submit(sa_req(i, i, 1)).unwrap();
        }
        let cycles = run_to_idle(&mut u, &mut mem);
        for i in 0..8 {
            assert_eq!(mem[&i] as i64, 1);
        }
        // Serial execution would take at least 8 × 4 = 32 cycles of FU time
        // plus read round-trips; pipelined it finishes in well under that.
        assert!(cycles < 24, "pipelined batch took {cycles} cycles");
    }

    #[test]
    fn dependent_adds_serialize_at_fu_latency() {
        // All additions to ONE address chain serially: each needs the
        // previous sum. n adds ≈ n × fu_latency cycles (the Figure 7
        // hot-address effect).
        let n = 32u64;
        let mut u = unit(8, 4);
        let mut mem = std::collections::HashMap::new();
        let mut now = Cycle(0);
        let mut submitted = 0;
        let mut done = false;
        let mut end = 0;
        for _ in 0..100_000 {
            now += 1;
            while submitted < n {
                if u.try_submit(sa_req(submitted, 0, 1)).is_ok() {
                    submitted += 1;
                } else {
                    break;
                }
            }
            u.tick(now);
            while let Some(op) = u.pop_to_mem() {
                match op {
                    ToMem::Read { addr, .. } => {
                        let bits = mem.get(&addr.word_index()).copied().unwrap_or(0);
                        u.on_value(addr, bits)
                    }
                    ToMem::Write { addr, bits, .. } => {
                        mem.insert(addr.word_index(), bits);
                    }
                }
            }
            while u.pop_ack().is_some() {}
            if submitted == n && u.is_idle() {
                done = true;
                end = now.raw();
                break;
            }
        }
        assert!(done);
        assert_eq!(mem[&0] as i64, n as i64);
        assert!(
            end >= n * 4,
            "dependent chain of {n} adds must take ≥ {} cycles, took {end}",
            n * 4
        );
        assert!(end < n * 4 + 40, "chain overhead too large: {end}");
    }

    #[test]
    fn full_store_stalls_and_recovers() {
        let mut u = unit(2, 4);
        u.try_submit(sa_req(1, 0, 1)).unwrap();
        u.try_submit(sa_req(2, 1, 1)).unwrap();
        let rejected = u.try_submit(sa_req(3, 2, 1));
        assert!(rejected.is_err());
        assert_eq!(u.stats().stalled_full, 1);
        // Drain and retry.
        let mut mem = std::collections::HashMap::new();
        run_to_idle(&mut u, &mut mem);
        u.try_submit(rejected.unwrap_err()).unwrap();
        run_to_idle(&mut u, &mut mem);
        assert_eq!(mem[&2] as i64, 1);
    }

    #[test]
    fn acks_are_produced_per_request() {
        let mut u = unit(8, 1);
        let mut mem = std::collections::HashMap::new();
        for i in 0..6 {
            u.try_submit(sa_req(100 + i, i % 2, 1)).unwrap();
        }
        let mut acks = 0;
        let mut now = Cycle(0);
        for _ in 0..10_000 {
            now += 1;
            u.tick(now);
            while let Some(op) = u.pop_to_mem() {
                match op {
                    ToMem::Read { addr, .. } => {
                        let bits = mem.get(&addr.word_index()).copied().unwrap_or(0);
                        u.on_value(addr, bits)
                    }
                    ToMem::Write { addr, bits, .. } => {
                        mem.insert(addr.word_index(), bits);
                    }
                }
            }
            while u.pop_ack().is_some() {
                acks += 1;
            }
            if u.is_idle() {
                break;
            }
        }
        assert_eq!(acks, 6, "every request is acknowledged exactly once");
    }

    #[test]
    fn fetch_op_returns_pre_op_value() {
        let mut u = unit(4, 2);
        let mut mem = std::collections::HashMap::new();
        mem.insert(0u64, 100u64);
        let req = MemRequest {
            id: 1,
            addr: Addr::from_word_index(0),
            op: MemOp::Scatter {
                bits: 5,
                kind: ScalarKind::I64,
                op: ScatterOp::Add,
                fetch: true,
            },
            origin: Origin::AddrGen { node: 0, ag: 0 },
        };
        u.try_submit(req).unwrap();
        let mut got = None;
        let mut now = Cycle(0);
        for _ in 0..1000 {
            now += 1;
            u.tick(now);
            while let Some(op) = u.pop_to_mem() {
                match op {
                    ToMem::Read { addr, .. } => {
                        let bits = mem.get(&addr.word_index()).copied().unwrap_or(0);
                        u.on_value(addr, bits)
                    }
                    ToMem::Write { addr, bits, .. } => {
                        mem.insert(addr.word_index(), bits);
                    }
                }
            }
            if let Some(a) = u.pop_ack() {
                got = Some(a.bits);
            }
            if u.is_idle() {
                break;
            }
        }
        assert_eq!(got, Some(100), "fetch-add returns the old value");
        assert_eq!(mem[&0] as i64, 105);
        assert_eq!(u.stats().fetch_ops, 1);
    }

    #[test]
    fn chained_fetch_ops_see_monotonic_old_values() {
        // Parallel queue allocation (§3.3): every fetch-add must observe a
        // distinct old value even when all requests hit one counter.
        let mut u = unit(8, 3);
        let mut mem = std::collections::HashMap::new();
        for i in 0..8 {
            let req = MemRequest {
                id: i,
                addr: Addr::from_word_index(0),
                op: MemOp::Scatter {
                    bits: 1,
                    kind: ScalarKind::I64,
                    op: ScatterOp::Add,
                    fetch: true,
                },
                origin: Origin::AddrGen { node: 0, ag: 0 },
            };
            u.try_submit(req).unwrap();
        }
        let mut olds = Vec::new();
        let mut now = Cycle(0);
        for _ in 0..10_000 {
            now += 1;
            u.tick(now);
            while let Some(op) = u.pop_to_mem() {
                match op {
                    ToMem::Read { addr, .. } => {
                        let bits = mem.get(&addr.word_index()).copied().unwrap_or(0);
                        u.on_value(addr, bits)
                    }
                    ToMem::Write { addr, bits, .. } => {
                        mem.insert(addr.word_index(), bits);
                    }
                }
            }
            while let Some(a) = u.pop_ack() {
                olds.push(a.bits as i64);
            }
            if u.is_idle() {
                break;
            }
        }
        olds.sort_unstable();
        assert_eq!(
            olds,
            (0..8).collect::<Vec<i64>>(),
            "each slot handed out once"
        );
        assert_eq!(mem[&0] as i64, 8);
    }

    #[test]
    fn min_max_mul_extensions() {
        for (op, vals, expect) in [
            (ScatterOp::Min, vec![5i64, -3, 9], -3i64),
            (ScatterOp::Max, vec![5, -3, 9], 9),
            (ScatterOp::Mul, vec![2, 3, 4], 0), // 0 initial × anything = 0
        ] {
            let mut u = unit(8, 2);
            let mut mem = std::collections::HashMap::new();
            if op == ScatterOp::Min {
                mem.insert(0u64, i64::MAX as u64);
            }
            if op == ScatterOp::Max {
                mem.insert(0u64, i64::MIN as u64);
            }
            for (i, v) in vals.iter().enumerate() {
                let req = MemRequest {
                    id: i as u64,
                    addr: Addr::from_word_index(0),
                    op: MemOp::Scatter {
                        bits: *v as u64,
                        kind: ScalarKind::I64,
                        op,
                        fetch: false,
                    },
                    origin: Origin::AddrGen { node: 0, ag: 0 },
                };
                u.try_submit(req).unwrap();
            }
            run_to_idle(&mut u, &mut mem);
            assert_eq!(mem[&0] as i64, expect, "{op:?}");
        }
    }

    #[test]
    fn f64_adds_are_exact_for_integers() {
        let mut u = unit(8, 4);
        let mut mem = std::collections::HashMap::new();
        for i in 0..20u64 {
            let req = MemRequest {
                id: i,
                addr: Addr::from_word_index(i % 3),
                op: MemOp::Scatter {
                    bits: 1.0f64.to_bits(),
                    kind: ScalarKind::F64,
                    op: ScatterOp::Add,
                    fetch: false,
                },
                origin: Origin::AddrGen { node: 0, ag: 0 },
            };
            // The store only has 8 entries; drain when full.
            if u.try_submit(req).is_err() {
                run_to_idle(&mut u, &mut mem);
                let req = MemRequest {
                    id: i,
                    addr: Addr::from_word_index(i % 3),
                    op: MemOp::Scatter {
                        bits: 1.0f64.to_bits(),
                        kind: ScalarKind::F64,
                        op: ScatterOp::Add,
                        fetch: false,
                    },
                    origin: Origin::AddrGen { node: 0, ag: 0 },
                };
                u.try_submit(req).unwrap();
            }
        }
        run_to_idle(&mut u, &mut mem);
        let total: f64 = (0..3)
            .map(|i| f64::from_bits(mem.get(&i).copied().unwrap_or(0)))
            .sum();
        assert_eq!(total, 20.0);
    }

    #[test]
    #[should_panic(expected = "non-scatter request")]
    fn plain_write_rejected() {
        let mut u = unit(2, 1);
        let req = MemRequest {
            id: 1,
            addr: Addr(0),
            op: MemOp::Write { bits: 1 },
            origin: Origin::AddrGen { node: 0, ag: 0 },
        };
        let _ = u.try_submit(req);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entry_config_rejected() {
        let _ = unit(0, 1);
    }

    #[test]
    fn traced_submit_and_tick_stamp_stages() {
        let mut u = unit(8, 2);
        let mut tracer = ReqTracer::every(1);
        tracer.issue(7, 0, 1);
        u.try_submit_traced(sa_req(7, 3, 1), Cycle(2), &mut tracer)
            .unwrap();
        let mut mem = std::collections::HashMap::new();
        let mut now = Cycle(2);
        for _ in 0..100 {
            now += 1;
            u.tick_traced(now, &mut tracer);
            while let Some(op) = u.pop_to_mem() {
                match op {
                    ToMem::Read { addr, .. } => {
                        let bits = mem.get(&addr.word_index()).copied().unwrap_or(0);
                        u.on_value(addr, bits);
                    }
                    ToMem::Write { id, addr, bits } => {
                        assert_eq!(id, 7, "write carries the originating request id");
                        mem.insert(addr.word_index(), bits);
                    }
                }
            }
            while u.pop_ack().is_some() {}
            if u.is_idle() {
                break;
            }
        }
        let rec = tracer.retire(7, now.raw()).expect("request sampled");
        assert_eq!(rec.stamp_at(ReqStage::CombStore), Some(2));
        let fu = rec.stamp_at(ReqStage::FuPipe).expect("FU entry stamped");
        assert!(fu > 2, "FU entry follows combining-store entry");
    }

    #[test]
    fn next_event_reports_fu_drain_and_queued_values() {
        let mut u = unit(4, 4);
        assert_eq!(u.next_event(Cycle(0)), None, "idle unit has no horizon");
        u.try_submit(sa_req(1, 0, 1)).unwrap();
        // A read is queued to_mem, but that is the caller's event; the unit
        // itself has nothing to do until the value returns.
        assert_eq!(u.next_event(Cycle(0)), None);
        u.on_value(Addr::from_word_index(0), 0);
        assert_eq!(u.next_event(Cycle(0)), Some(Cycle(1)), "value issues next");
        u.tick(Cycle(1)); // issue into the FU: done at 1 + 4
        assert_eq!(u.next_event(Cycle(1)), Some(Cycle(5)));
        // An overdue retirement still reports the next cycle, never `now`.
        assert_eq!(u.next_event(Cycle(9)), Some(Cycle(10)));
    }

    #[test]
    fn skip_cycles_matches_per_cycle_stall_accounting() {
        // A full store being retried every cycle: bulk skip accounting must
        // equal per-cycle tick + failed submit.
        let mk = || {
            let mut u = unit(2, 400);
            u.try_submit(sa_req(1, 0, 1)).unwrap();
            u.try_submit(sa_req(2, 1, 1)).unwrap();
            u.on_value(Addr::from_word_index(0), 0);
            u.on_value(Addr::from_word_index(1), 0);
            u.tick(Cycle(1));
            u.tick(Cycle(2));
            u
        };
        let mut stepped = mk();
        for c in 3..=10 {
            stepped.tick(Cycle(c));
            assert!(stepped.try_submit(sa_req(3, 2, 1)).is_err());
        }
        let mut skipped = mk();
        // next_event at cycle 2 is the FU drain at 401; skip cycles 3..=10.
        skipped.skip_cycles(Cycle(2), 8, true);
        assert_eq!(stepped.stats(), skipped.stats());
    }

    fn stall_injector(cycles: u64, period: u64, max: u64) -> FaultInjector {
        let plan = sa_faults::FaultPlan {
            seed: 5,
            cs_timeout: 64,
            rules: vec![sa_faults::FaultRule {
                kind: FaultKind::CsStall { cycles },
                period,
                max,
                after: 0,
            }],
        };
        plan.injector(sa_faults::FaultSite::CsEntry, 0, 0)
    }

    #[test]
    fn injected_stall_delays_issue_but_result_is_identical() {
        let run = |faults: Option<FaultInjector>| {
            let mut u = unit(8, 2);
            if let Some(f) = faults {
                u.set_fault_injector(f);
            }
            for i in 0..6 {
                u.try_submit(sa_req(i, i % 2, 1 + i as i64)).unwrap();
            }
            let mut mem = std::collections::HashMap::new();
            let cycles = run_to_idle(&mut u, &mut mem);
            (mem, cycles, u.resilience_stats())
        };
        let (mem_clean, t_clean, res_clean) = run(None);
        let (mem_fault, t_fault, res_fault) = run(Some(stall_injector(25, 1, 2)));
        assert!(res_clean.is_zero());
        assert_eq!(res_fault.cs_stalls, 2, "two stalls were injected");
        assert_eq!(mem_clean, mem_fault, "stalls never change results");
        assert!(
            t_fault > t_clean,
            "stalled run ({t_fault}) slower than clean ({t_clean})"
        );
    }

    #[test]
    fn watchdog_cancels_an_overdue_stall() {
        let mut u = unit(4, 2);
        // One very long stall on the first issue attempt.
        u.set_fault_injector(stall_injector(1_000_000, 1, 1));
        u.try_submit(sa_req(1, 0, 7)).unwrap();
        let mut now = Cycle(0);
        let mut mem = std::collections::HashMap::new();
        let mut done_at = None;
        for _ in 0..500 {
            now += 1;
            u.cancel_stalls_older_than(now, 16);
            u.tick(now);
            while let Some(op) = u.pop_to_mem() {
                match op {
                    ToMem::Read { addr, .. } => u.on_value(addr, 0),
                    ToMem::Write { addr, bits, .. } => {
                        mem.insert(addr.word_index(), bits);
                    }
                }
            }
            while u.pop_ack().is_some() {}
            if u.is_idle() {
                done_at = Some(now.raw());
                break;
            }
        }
        let done_at = done_at.expect("watchdog must unstick the entry");
        assert!(done_at < 100, "timed out at {done_at}, not after 1M cycles");
        assert_eq!(mem[&0] as i64, 7);
        let res = u.resilience_stats();
        assert_eq!(res.cs_stalls, 1);
        assert_eq!(res.cs_timeouts, 1);
    }

    #[test]
    fn occupancy_tracking() {
        let mut u = unit(4, 4);
        assert_eq!(u.occupancy(), 0);
        assert!(u.can_accept());
        u.try_submit(sa_req(1, 0, 1)).unwrap();
        u.try_submit(sa_req(2, 1, 1)).unwrap();
        assert_eq!(u.occupancy(), 2);
        u.tick(Cycle(1));
        assert_eq!(u.stats().occupancy_integral, 2);
    }
}
