//! One node's memory system: address-interleaved cache banks, a scatter-add
//! unit in front of each bank (Figure 4a), and the DRAM channels behind them.
//!
//! Stepping is organized around per-bank [`lane`](crate::lane)s so the same
//! code drives three byte-identical modes: classic serial ticking, per-cycle
//! parallel stepping across a small worker pool (`--node-threads`), and
//! epoch lookahead ([`NodeMemSys::advance_epoch`]) that lets lanes batch
//! whole provably-closed stretches of cycles between barriers.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use sa_cache::{CacheBank, CacheStats, SumBack};
use sa_faults::{FaultPlan, FaultSite, ResilienceStats};
use sa_mem::{BackingStore, DramChannel, DramStats};
use sa_sim::{
    Addr, BoundedQueue, Cycle, MachineConfig, MemOp, MemRequest, MemResponse, Origin, QueueStats,
};
use sa_telemetry::{NullTrace, ReqStage, ReqTracer, Scope, SeriesSet, TraceSink};

use crate::lane::{
    fold_lane_to, lane_front, lane_horizon, run_stride, step_lane, worker_loop, BankLane,
    LaneParams, LaneSet, PoolShared, SpinBarrier, StepPool, MODE_EPOCH, MODE_STEP,
};
use crate::unit::{SaStats, ScatterAddUnit};

/// Depth of each bank's input queue (requests from the address generators
/// and, in multi-node runs, the network interface).
const BANK_IN_DEPTH: usize = 8;

/// Sampling interval (cycles) used when a tracer is installed without an
/// explicit [`NodeMemSys::set_sample_interval`] call.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 64;

/// Aggregated statistics of a [`NodeMemSys`] run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Merged scatter-add unit counters.
    pub sa: SaStats,
    /// Merged cache bank counters.
    pub cache: CacheStats,
    /// Merged DRAM channel counters.
    pub dram: DramStats,
    /// Merged bank input queue statistics.
    pub bank_in: QueueStats,
    /// Merged resilience counters (ECC corrections, MSHR replays, stalls);
    /// all zero unless a fault plan is installed.
    pub resilience: ResilienceStats,
}

impl NodeStats {
    /// Total DRAM words moved (the "Mem References" the paper reports count
    /// word accesses issued by the program; this counts actual DRAM traffic).
    pub fn dram_words(&self) -> u64 {
        self.dram.words_transferred
    }

    /// Record the aggregated counters into a telemetry scope, under the
    /// `sa.*`, `cache.*`, `dram.*`, and `queue.bank_in.*` sub-scopes.
    /// Resilience counters appear under `resilience.*` only when nonzero,
    /// so fault-free runs keep byte-identical stats output.
    pub fn record(&self, scope: &mut Scope<'_>) {
        self.sa.record(&mut scope.scope("sa"));
        self.cache.record(&mut scope.scope("cache"));
        self.dram.record(&mut scope.scope("dram"));
        self.bank_in.record(&mut scope.scope("queue.bank_in"));
        if !self.resilience.is_zero() {
            self.resilience.record(&mut scope.scope("resilience"));
        }
    }
}

/// A single node of the clustered data-parallel machine (Figure 2): the
/// memory-side of one stream processor.
///
/// Requests are injected per cycle by the address generators (or by the
/// simple driver in [`drive_scatter`](crate::drive_scatter)); completions are
/// drained with [`pop_completion`](Self::pop_completion). Scatter requests
/// are acknowledged when their addition is performed inside the scatter-add
/// unit; plain writes are posted (acknowledged on acceptance by the cache);
/// reads complete when data returns.
///
/// # Intra-node parallel stepping
///
/// With [`set_node_threads`](Self::set_node_threads) above 1 (seeded from
/// [`sa_sim::node_threads_default`] at construction), the per-bank lanes are
/// stepped by a persistent spin-barrier worker pool, and run loops may batch
/// whole epochs with [`advance_epoch`](Self::advance_epoch). Simulated
/// cycles, statistics, probe snapshots, and occupancy counters are
/// byte-identical across every thread count — parallelism is wall-clock
/// only. Parallel stepping disables itself automatically whenever it could
/// observe a difference: event tracing, request-lifecycle tracing, and
/// multi-node membership (those machines already step nodes on their own
/// threads) all force the serial path.
#[derive(Debug)]
pub struct NodeMemSys<T: TraceSink = NullTrace> {
    cfg: MachineConfig,
    node: usize,
    combining: bool,
    /// Per-bank lanes (bank + scatter-add unit + input queue), shared with
    /// the worker pool. Serial ticking borrows the set uniquely (no pool
    /// alive) and bypasses the locks.
    lanes: LaneSet,
    channels: Vec<DramChannel>,
    store: BackingStore,
    completions: VecDeque<MemResponse>,
    /// Completions produced by lanes that ran ahead of the node clock
    /// during an epoch, keyed by lane and sorted by (cycle, lane); migrated
    /// into `completions` when the clock reaches their cycle so drain order
    /// is byte-identical to serial stepping.
    future_completions: VecDeque<(usize, MemResponse)>,
    /// Node count when part of a multi-node machine (`None` = standalone).
    /// With homing installed, combining mode only zero-allocates *remote*
    /// lines — locally-homed scatter-adds (including arriving sum-backs)
    /// read their true memory value (§3.2: "if a remote memory value has to
    /// be brought into the cache, it is simply allocated with a value of
    /// 0"). Without homing, a combining node treats every line as
    /// combinable (the single-node testing configuration).
    n_nodes: Option<usize>,
    tracer: T,
    /// Request-lifecycle tracer (see [`ReqTracer`]); disabled unless
    /// [`MachineConfig::req_sample`] or [`set_req_sample`](Self::set_req_sample)
    /// turns it on. Runtime-gated so the untraced hot loop pays one integer
    /// compare per stamp site.
    req_trace: ReqTracer,
    /// Cycles between occupancy samples; 0 disables sampling entirely, so
    /// the untraced hot loop pays a single integer compare per tick.
    sample_interval: u64,
    next_sample: u64,
    series: SeriesSet,
    /// Per-channel `words_transferred` at the previous sample, for bus
    /// utilization deltas.
    last_dram_words: Vec<u64>,
    /// Whether run loops driving this node may fast-forward over cycles in
    /// which [`NodeMemSys::next_event`] proves nothing can change. Seeded
    /// from [`sa_sim::fast_forward_default`] at construction.
    fast_forward: bool,
    /// Whether a non-empty fault plan is installed (gates the per-tick
    /// watchdog scan so fault-free runs pay one branch).
    faults_active: bool,
    /// Watchdog threshold for fault-injected combining-store stalls.
    cs_timeout: u64,
    /// How many threads step the lanes (1 = classic serial). Seeded from
    /// [`sa_sim::node_threads_default`] at construction.
    node_threads: usize,
    /// The persistent worker pool; `None` until the first parallel tick,
    /// and torn down (workers joined) whenever a serial tick happens.
    pool: Option<StepPool>,
    /// The farthest any lane has simulated; epochs only engage once the
    /// node clock has caught up (`max_ran_until <= now`).
    max_ran_until: u64,
}

impl NodeMemSys {
    /// Build the memory system of node `node` with configuration `cfg`,
    /// without tracing (the [`NullTrace`] sink).
    ///
    /// `combining` enables the multi-node cache-combining optimization of
    /// §3.2: scatter-add targets are zero-allocated in the local cache and
    /// evictions become [`SumBack`]s. Combining only supports
    /// [`ScatterOp::Add`](sa_sim::ScatterOp::Add) (zero is its identity).
    pub fn new(cfg: MachineConfig, node: usize, combining: bool) -> NodeMemSys {
        NodeMemSys::with_tracer(cfg, node, combining, NullTrace)
    }
}

impl<T: TraceSink> NodeMemSys<T> {
    /// Build the memory system with an event-trace sink attached. Sampling
    /// starts at [`DEFAULT_SAMPLE_INTERVAL`]; tune with
    /// [`set_sample_interval`](Self::set_sample_interval).
    pub fn with_tracer(
        cfg: MachineConfig,
        node: usize,
        combining: bool,
        tracer: T,
    ) -> NodeMemSys<T> {
        let lanes: Vec<Mutex<BankLane>> = (0..cfg.cache.banks)
            .map(|b| {
                Mutex::new(BankLane {
                    index: b,
                    bank: CacheBank::new(cfg.cache, node, b),
                    sa: ScatterAddUnit::new(cfg.sa),
                    bank_in: BoundedQueue::new(BANK_IN_DEPTH),
                    rr_sa_first: false,
                    out: VecDeque::new(),
                    ran_until: 0,
                    half_tick: None,
                    epoch_idle: false,
                })
            })
            .collect();
        let channels = (0..cfg.dram.channels)
            .map(|_| DramChannel::new(cfg.dram))
            .collect();
        let sample_interval = if T::ENABLED {
            DEFAULT_SAMPLE_INTERVAL
        } else {
            0
        };
        let mut sys = NodeMemSys {
            node,
            combining,
            lanes: Arc::new(lanes),
            channels,
            store: BackingStore::new(),
            completions: VecDeque::new(),
            future_completions: VecDeque::new(),
            n_nodes: None,
            tracer,
            req_trace: ReqTracer::every(cfg.req_sample),
            sample_interval,
            next_sample: 0,
            series: SeriesSet::new(sample_interval),
            last_dram_words: vec![0; cfg.dram.channels],
            fast_forward: sa_sim::fast_forward_default(),
            faults_active: false,
            cs_timeout: sa_faults::DEFAULT_CS_TIMEOUT,
            node_threads: sa_sim::node_threads_default().max(1),
            pool: None,
            max_ran_until: 0,
            cfg,
        };
        if let Some(plan) = sa_faults::default_plan() {
            sys.set_fault_plan(&plan);
        }
        sys
    }

    /// Install the fault plan's schedules for this node: per-channel DRAM
    /// ECC faults, per-unit combining-store stalls, and the stall watchdog
    /// threshold. [`NodeMemSys::with_tracer`] applies the process-wide
    /// [`sa_faults::default_plan`] automatically; call this to override it.
    /// Every schedule is keyed by `(plan seed, site, node, component)`, so
    /// fault decisions are reproducible regardless of stepping order,
    /// thread count, or fast-forward.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for (c, ch) in self.channels.iter_mut().enumerate() {
            ch.set_fault_injector(plan.injector(FaultSite::DramRead, self.node as u64, c as u64));
        }
        for (b, m) in self.lanes.iter().enumerate() {
            m.lock()
                .expect("lane lock")
                .sa
                .set_fault_injector(plan.injector(FaultSite::CsEntry, self.node as u64, b as u64));
        }
        self.cs_timeout = plan.cs_timeout;
        self.faults_active = !plan.is_empty();
    }

    /// Enable or disable event-horizon fast-forward for run loops driving
    /// this node (wall-clock only; simulated results are identical either
    /// way). Overrides the process-wide default for this instance. Also
    /// gates [`advance_epoch`](Self::advance_epoch).
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Whether run loops may fast-forward over provably-idle cycles.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Set how many threads step this node's bank lanes — the intra-node
    /// parallelism axis (see `docs/PARALLELISM.md`). 1 restores classic
    /// serial stepping; values above the bank count are clamped at use.
    /// Simulated results are byte-identical for every value. Overrides the
    /// process-wide [`sa_sim::node_threads_default`] this node was
    /// constructed with.
    pub fn set_node_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.node_threads {
            self.node_threads = threads;
            // Pool size changed: join the old workers; the next parallel
            // tick spawns a right-sized pool.
            self.pool = None;
        }
    }

    /// How many threads step this node's bank lanes.
    pub fn node_threads(&self) -> usize {
        self.node_threads
    }

    /// Set the occupancy sampling interval in cycles (0 disables sampling).
    pub fn set_sample_interval(&mut self, interval: u64) {
        self.sample_interval = interval;
        self.next_sample = 0;
        self.series = SeriesSet::new(interval);
    }

    /// The cycle-sampled occupancy series gathered so far.
    pub fn series(&self) -> &SeriesSet {
        &self.series
    }

    /// The attached trace sink.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Consume the node and return its trace sink.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Set the request-lifecycle sampling interval: one in `sample` requests
    /// is traced (0 disables). Overrides [`MachineConfig::req_sample`].
    pub fn set_req_sample(&mut self, sample: u64) {
        self.req_trace = ReqTracer::every(sample);
    }

    /// The request-lifecycle records gathered so far.
    pub fn req_tracer(&self) -> &ReqTracer {
        &self.req_trace
    }

    /// Take the request-lifecycle tracer, leaving a disabled one behind
    /// (harvested into run reports at the end of a kernel).
    pub fn take_req_trace(&mut self) -> ReqTracer {
        std::mem::take(&mut self.req_trace)
    }

    /// Declare this node part of an `n`-node machine with line-interleaved
    /// address homing (`home = line mod n`). Affects which lines combining
    /// mode treats as remote, and disables intra-node parallel stepping
    /// (multi-node machines already step each node on its own thread).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the node index is out of range.
    pub fn set_nodes(&mut self, n: usize) {
        assert!(n > 0, "need at least one node");
        assert!(self.node < n, "node index {} out of range {n}", self.node);
        self.n_nodes = Some(n);
    }

    /// The home node of an address under line-interleaved homing
    /// (this node when homing is not installed).
    pub fn home_of(&self, addr: Addr) -> usize {
        match self.n_nodes {
            Some(n) => (addr.line_index(self.cfg.cache.line_bytes) % n as u64) as usize,
            None => self.node,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// This node's index.
    pub fn node_index(&self) -> usize {
        self.node
    }

    /// The bank that serves `addr`.
    pub fn bank_of(&self, addr: Addr) -> usize {
        self.cfg
            .cache
            .bank_of_line(addr.line_index(self.cfg.cache.line_bytes))
    }

    /// Functional view of this node's memory (for loading inputs and
    /// checking results).
    pub fn store(&self) -> &BackingStore {
        &self.store
    }

    /// Mutable functional view of this node's memory.
    pub fn store_mut(&mut self) -> &mut BackingStore {
        &mut self.store
    }

    /// The node-level parameters a lane step needs, copied out for the
    /// worker threads.
    fn lane_params(&self) -> LaneParams {
        LaneParams {
            node: self.node,
            combining: self.combining,
            n_nodes: self.n_nodes,
            line_bytes: self.cfg.cache.line_bytes,
            faults_active: self.faults_active,
            cs_timeout: self.cs_timeout,
        }
    }

    /// Inject one request into its bank's input queue.
    ///
    /// # Errors
    ///
    /// Returns the request back when the bank queue is full (the address
    /// generator stalls).
    ///
    /// # Panics
    ///
    /// Panics if a scatter request uses a non-`Add` reduction while the node
    /// is in combining mode (zero-allocate assumes the additive identity).
    pub fn inject(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        if self.combining {
            if let MemOp::Scatter { op, .. } = req.op {
                assert_eq!(
                    op,
                    sa_sim::ScatterOp::Add,
                    "cache combining requires the additive identity"
                );
            }
        }
        let bank = self.bank_of(req.addr);
        self.lanes[bank]
            .lock()
            .expect("lane lock")
            .bank_in
            .try_push(req)
    }

    /// [`inject`](Self::inject), recording the request's lifecycle: an
    /// [`ReqStage::Issued`] stamp on the first attempt (idempotent across
    /// stall retries) and an [`ReqStage::Enqueued`] stamp on acceptance.
    ///
    /// # Errors
    ///
    /// Returns the request back when the bank queue is full, exactly as
    /// [`inject`](Self::inject) does.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`inject`](Self::inject).
    pub fn inject_traced(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest> {
        let id = req.id;
        self.req_trace.issue(id, self.node, now.raw());
        let r = self.inject(req);
        if r.is_ok() {
            self.req_trace.stamp(id, ReqStage::Enqueued, now.raw());
        }
        r
    }

    /// Whether bank `bank`'s input queue can take one more request.
    pub fn can_inject(&self, addr: Addr) -> bool {
        self.lanes[self.bank_of(addr)]
            .lock()
            .expect("lane lock")
            .bank_in
            .can_accept()
    }

    /// Free input-queue slots at the bank serving `addr` — all words of one
    /// cache line share a bank, so a caller injecting a whole line (a
    /// sum-back application) must check this against the word count.
    pub fn inject_capacity(&self, addr: Addr) -> usize {
        self.lanes[self.bank_of(addr)]
            .lock()
            .expect("lane lock")
            .bank_in
            .free()
    }

    /// Whether ticks should fan the step phase out across the worker pool.
    /// Event tracing, request-lifecycle tracing, and multi-node membership
    /// all force the serial path (they thread per-request state through the
    /// step phase or already parallelize at node granularity).
    fn parallel_step_wanted(&self) -> bool {
        self.node_threads > 1
            && self.lanes.len() > 1
            && !T::ENABLED
            && !self.req_trace.is_on()
            && self.n_nodes.is_none()
    }

    /// Spawn (or re-size) the persistent worker pool.
    fn ensure_pool(&mut self) {
        let total = self.node_threads.min(self.lanes.len());
        if let Some(p) = &self.pool {
            if p.threads == total {
                return;
            }
        }
        self.pool = None;
        let shared = Arc::new(PoolShared {
            barrier: SpinBarrier::new(total as u32),
            mode: AtomicU8::new(MODE_STEP),
            now: AtomicU64::new(0),
            cap: AtomicU64::new(0),
            params: Mutex::new(self.lane_params()),
            panicked: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(total - 1);
        for w in 0..total - 1 {
            let sh = Arc::clone(&shared);
            let lanes = Arc::clone(&self.lanes);
            let node = self.node;
            let h = std::thread::Builder::new()
                .name(format!("sa-node{node}-lane{w}"))
                .spawn(move || worker_loop(sh, lanes, w, total))
                .expect("spawn intra-node stepping worker");
            handles.push(h);
        }
        self.pool = Some(StepPool {
            shared,
            handles,
            threads: total,
        });
    }

    /// Advance the whole memory system by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        if self.parallel_step_wanted() {
            self.ensure_pool();
            self.tick_parallel(now);
        } else {
            if self.pool.is_some() {
                // Parallel stepping turned off (or became ineligible): join
                // the workers so the serial fast path can borrow the lane
                // set uniquely, without locks.
                self.pool = None;
            }
            self.tick_per_cycle(now);
        }

        // Occupancy sampling (off unless a sample interval is set). Epochs
        // never cross `next_sample`, so every sample reads whole-node state
        // at exactly its cycle in every stepping mode.
        if self.sample_interval != 0 && now.raw() >= self.next_sample {
            self.next_sample = now.raw() + self.sample_interval;
            self.sample(now);
        }
    }

    /// The classic single-threaded tick: channel phase, then every lane's
    /// front phase in bank order, then every lane's step phase in bank
    /// order. The step phase never touches the channels and bank state is
    /// lane-local, so this ordering is byte-identical to the historical
    /// interleaved per-bank loop — and structurally identical to the
    /// parallel tick, which runs the same phases with the steps fanned out.
    fn tick_per_cycle(&mut self, now: Cycle) {
        let params = self.lane_params();
        let line_bytes = self.cfg.cache.line_bytes;
        let dram_cfg = self.cfg.dram;
        let NodeMemSys {
            lanes,
            channels,
            store,
            req_trace,
            tracer,
            ..
        } = self;
        let lanes = Arc::get_mut(lanes).expect("serial tick with a live worker pool");

        // 1. DRAM channels produce fills / acknowledgements.
        for ch in channels.iter_mut() {
            if let Some(resp) = ch.tick(now, store) {
                match resp.origin {
                    Origin::CacheBank { bank, .. } => lanes[bank]
                        .get_mut()
                        .expect("lane lock")
                        .bank
                        .on_mem_response(resp),
                    other => panic!("unexpected DRAM response origin {other:?}"),
                }
            }
        }

        // 2+3. Front (crossbar) phase: bank tick + DRAM command submission.
        for m in lanes.iter_mut() {
            lane_front(
                m.get_mut().expect("lane lock"),
                now,
                channels,
                dram_cfg,
                line_bytes,
                req_trace,
            );
        }

        // 4-8. Lane-local step phase (skipped for lanes an epoch already
        // ran through this cycle).
        for m in lanes.iter_mut() {
            let lane = m.get_mut().expect("lane lock");
            if now.raw() > lane.ran_until {
                step_lane(lane, now, &params, req_trace, tracer);
            }
        }

        self.merge_lane_outputs(now);
    }

    /// One parallel cycle: the coordinator runs the channel and front
    /// phases serially (the crossbar serialization point), then releases
    /// the pool so every thread steps its lane stride concurrently.
    fn tick_parallel(&mut self, now: Cycle) {
        let params = self.lane_params();
        let line_bytes = self.cfg.cache.line_bytes;
        let dram_cfg = self.cfg.dram;

        // 1. DRAM channels produce fills / acknowledgements.
        for ch in &mut self.channels {
            if let Some(resp) = ch.tick(now, &mut self.store) {
                match resp.origin {
                    Origin::CacheBank { bank, .. } => {
                        let mut lane = self.lanes[bank].lock().expect("lane lock");
                        debug_assert!(
                            lane.ran_until < now.raw(),
                            "fill delivered to a lane that ran ahead of the clock"
                        );
                        lane.bank.on_mem_response(resp);
                    }
                    other => panic!("unexpected DRAM response origin {other:?}"),
                }
            }
        }

        // 2+3. Front (crossbar) phase: serial, bank order.
        for m in self.lanes.iter() {
            lane_front(
                &mut m.lock().expect("lane lock"),
                now,
                &mut self.channels,
                dram_cfg,
                line_bytes,
                &mut self.req_trace,
            );
        }

        // 4-8. Step phase, fanned out across the pool (two barriers).
        {
            let pool = self.pool.as_ref().expect("pool ensured");
            let shared = &pool.shared;
            shared.now.store(now.raw(), Ordering::Release);
            shared.cap.store(0, Ordering::Release);
            *shared.params.lock().expect("params lock") = params;
            shared.mode.store(MODE_STEP, Ordering::Release);
            shared.barrier.wait(); // release
            let total = pool.threads;
            let own = catch_unwind(AssertUnwindSafe(|| {
                run_stride(&self.lanes, total - 1, total, MODE_STEP, now, 0, &params);
            }));
            shared.barrier.wait(); // join
            if let Err(p) = own {
                resume_unwind(p);
            }
            assert!(
                !shared.panicked.load(Ordering::Acquire),
                "intra-node stepping worker panicked"
            );
        }

        self.merge_lane_outputs(now);
    }

    /// Merge per-lane completion buffers into the node queue in lane order,
    /// first migrating any epoch-ahead completions whose cycle has arrived.
    /// Each lane is either at the clock (fresh completions in its `out`
    /// buffer) or ahead of it (its completions parked in
    /// `future_completions`), so merging both sources in lane index order
    /// reproduces the serial (cycle, lane, FIFO) drain order exactly.
    fn merge_lane_outputs(&mut self, now: Cycle) {
        let t = now.raw();
        for b in 0..self.lanes.len() {
            while self
                .future_completions
                .front()
                .is_some_and(|(l, r)| *l == b && r.at.raw() == t)
            {
                let (_, r) = self.future_completions.pop_front().expect("checked front");
                self.completions.push_back(r);
            }
            let mut lane = self.lanes[b].lock().expect("lane lock");
            self.completions.extend(lane.out.drain(..));
        }
    }

    /// Batch one *epoch*: when the node is provably closed — no undrained
    /// completions, idle DRAM channels, no in-flight DRAM commands — every
    /// lane free-runs independently (cycles, not barriers, between syncs)
    /// until it would arbitrate for a DRAM channel, until it drains, or
    /// until `cap` (inclusive). Returns `adv` such that every cycle in
    /// `(now, now + adv]` is fully simulated node-wide; the caller must
    /// then jump its clock to `now + adv - 1` so cycle `now + adv` is
    /// re-ticked (a no-op for the lanes) exactly like the classic
    /// fast-forward skip, keeping termination checks, probes, and samples
    /// on the same cycles as serial stepping. Returns 0 — and the caller
    /// falls back to the [`next_event`](Self::next_event) skip — whenever
    /// an epoch cannot engage (fast-forward off, serial stepping, lanes
    /// ahead of the clock, pending traffic, or no headroom under `cap`).
    ///
    /// Lanes may stop *beyond* the returned horizon; their extra cycles are
    /// remembered (`ran_until`, `future_completions`) and the per-cycle
    /// step skips them until the clock catches up, so no cycle is ever
    /// simulated twice. Byte identity with serial stepping holds because no
    /// external input can reach a lane mid-epoch: injection only happens
    /// with the clock at the lane front, and the idle channels can deliver
    /// nothing without a command submitted first.
    pub fn advance_epoch(&mut self, now: Cycle, cap: u64) -> u64 {
        let t = now.raw();
        if !self.fast_forward || !self.parallel_step_wanted() || self.max_ran_until > t {
            return 0;
        }
        let mut cap = cap;
        if self.sample_interval != 0 {
            // Never let a lane cross the next sample cycle: the sample must
            // read every lane's state at exactly that cycle.
            cap = cap.min(self.next_sample.saturating_sub(1));
        }
        if cap <= t {
            return 0;
        }
        if !self.completions.is_empty()
            || !self.future_completions.is_empty()
            || self.channels.iter().any(|c| !c.is_idle())
        {
            return 0;
        }
        for m in self.lanes.iter() {
            let lane = m.lock().expect("lane lock");
            debug_assert_eq!(lane.ran_until, t, "epoch from a lane off the clock");
            if lane.half_tick.is_some() || lane.bank.has_mem_cmd() {
                return 0;
            }
        }

        self.ensure_pool();
        let params = self.lane_params();
        {
            let pool = self.pool.as_ref().expect("pool ensured");
            let shared = &pool.shared;
            shared.now.store(t, Ordering::Release);
            shared.cap.store(cap, Ordering::Release);
            *shared.params.lock().expect("params lock") = params;
            shared.mode.store(MODE_EPOCH, Ordering::Release);
            shared.barrier.wait(); // release
            let total = pool.threads;
            let own = catch_unwind(AssertUnwindSafe(|| {
                run_stride(&self.lanes, total - 1, total, MODE_EPOCH, now, cap, &params);
            }));
            shared.barrier.wait(); // join
            if let Err(p) = own {
                resume_unwind(p);
            }
            assert!(
                !shared.panicked.load(Ordering::Acquire),
                "intra-node stepping worker panicked"
            );
        }

        // The epoch horizon G: the last cycle every lane has fully
        // simulated. A lane parked at half-tick `c` has run through `c-1`;
        // a capped lane through `cap`; if every lane drained, the node's
        // last event is the latest stop.
        let mut g = cap;
        let mut all_idle = true;
        let mut max_stop = t;
        for m in self.lanes.iter() {
            let lane = m.lock().expect("lane lock");
            max_stop = max_stop.max(lane.ran_until);
            if lane.epoch_idle {
                continue;
            }
            all_idle = false;
            if let Some(c) = lane.half_tick {
                g = g.min(c - 1);
            }
        }
        let g = if all_idle { max_stop } else { g };

        // Fold the channels' idle window (t, g): serial stepping ticked the
        // idle channels every cycle. Cycle g itself is covered by the
        // caller's re-tick.
        if g > t + 1 {
            let k = g - 1 - t;
            for c in &mut self.channels {
                c.skip_idle(now, k);
            }
        }

        // Fold drained lanes forward to G and gather every lane's
        // completions.
        let mut outs: Vec<(usize, MemResponse)> = Vec::new();
        for (b, m) in self.lanes.iter().enumerate() {
            let mut lane = m.lock().expect("lane lock");
            if lane.ran_until < g {
                debug_assert!(lane.epoch_idle, "only drained lanes stop behind G");
                let from = lane.ran_until;
                fold_lane_to(&mut lane, from, g);
            }
            for r in lane.out.drain(..) {
                outs.push((b, r));
            }
        }
        // Serial completion order is (cycle, lane, FIFO-within-lane); the
        // sort is stable, so FIFO within a lane survives. Completions up to
        // G drain now; later ones park until the clock reaches their cycle.
        outs.sort_by_key(|&(b, ref r)| (r.at.raw(), b));
        for (b, r) in outs {
            if r.at.raw() <= g {
                self.completions.push_back(r);
            } else {
                self.future_completions.push_back((b, r));
            }
        }
        self.max_ran_until = max_stop.max(g);
        g - t
    }

    /// Take one occupancy sample: per-bank queue and combining-store levels,
    /// per-channel bus words, and whole-node series.
    fn sample(&mut self, now: Cycle) {
        let node = self.node;
        let cycle = now.raw();
        let mut queue_occ = 0u64;
        let mut cs_residency = 0u64;
        let mut fu_depth = 0u64;
        for (b, m) in self.lanes.iter().enumerate() {
            let lane = m.lock().expect("lane lock");
            let q = lane.bank_in.len() as u64;
            let cs = lane.sa.occupancy() as u64;
            queue_occ += q;
            cs_residency += cs;
            fu_depth += lane.sa.fu_depth() as u64;
            if self.tracer.enabled() {
                let track = format!("node{node}.cache.bank{b}");
                self.tracer
                    .counter(&track, "queue_occupancy", cycle, q as f64);
                self.tracer
                    .counter(&track, "cs_residency", cycle, cs as f64);
            }
        }
        let mut bus_words = 0u64;
        for c in 0..self.channels.len() {
            let words = self.channels[c].stats().words_transferred;
            let delta = words - self.last_dram_words[c];
            self.last_dram_words[c] = words;
            bus_words += delta;
            if self.tracer.enabled() {
                let track = format!("node{node}.dram.chan{c}");
                self.tracer
                    .counter(&track, "bus_words", cycle, delta as f64);
            }
        }
        // Fraction of the node's peak DRAM bandwidth used this interval.
        let peak_words = self.cfg.dram.channel_rate.words_per_cycle()
            * self.channels.len() as f64
            * self.sample_interval as f64;
        let bus_util = if peak_words > 0.0 {
            bus_words as f64 / peak_words
        } else {
            0.0
        };
        let prefix = format!("node{node}");
        self.series.push(
            &format!("{prefix}.queue.bank_in.occupancy"),
            cycle,
            queue_occ as f64,
        );
        self.series.push(
            &format!("{prefix}.sa.cs_residency"),
            cycle,
            cs_residency as f64,
        );
        self.series
            .push(&format!("{prefix}.sa.fu_depth"), cycle, fu_depth as f64);
        self.series
            .push(&format!("{prefix}.dram.bus_util"), cycle, bus_util);
    }

    /// Next completed request (scatter ack, read data, or posted write ack).
    pub fn pop_completion(&mut self) -> Option<MemResponse> {
        self.completions.pop_front()
    }

    /// Next evicted partial-sum line from any bank (combining mode); the
    /// multi-node system forwards these to the home node.
    pub fn pop_sum_back(&mut self) -> Option<(usize, SumBack)> {
        for (b, m) in self.lanes.iter().enumerate() {
            if let Some(sb) = m.lock().expect("lane lock").bank.pop_sum_back() {
                return Some((b, sb));
            }
        }
        None
    }

    /// Flush every partial-sum line from every bank — the final
    /// flush-with-sum-back synchronization step of §3.2.
    pub fn flush_sum_backs(&mut self) -> Vec<SumBack> {
        self.lanes
            .iter()
            .flat_map(|m| m.lock().expect("lane lock").bank.flush_sum_backs())
            .collect()
    }

    /// Write every dirty cache line back into the functional store and
    /// invalidate the cache — the zero-time verification flush used at the
    /// end of a run so [`NodeMemSys::store`] shows the coherent image.
    /// Partial-sum lines (combining mode) are *not* flushed here; use
    /// [`NodeMemSys::flush_sum_backs`] for those.
    pub fn flush_to_store(&mut self) {
        for m in self.lanes.iter() {
            let mut lane = m.lock().expect("lane lock");
            for (base, data) in lane.bank.flush_dirty() {
                self.store.write_line(base, &data);
            }
        }
    }

    /// Coherent read of one word: the cache copy if resident, else memory.
    pub fn read_coherent(&self, addr: Addr) -> u64 {
        let bank = self.bank_of(addr);
        self.lanes[bank]
            .lock()
            .expect("lane lock")
            .bank
            .probe(addr)
            .unwrap_or_else(|| self.store.read_word(addr))
    }

    /// Whether every queue, bank, unit, and channel is empty (completions
    /// included — drain them first).
    pub fn is_idle(&self) -> bool {
        self.completions.is_empty()
            && self.future_completions.is_empty()
            && self.lanes.iter().all(|m| {
                let lane = m.lock().expect("lane lock");
                lane.bank_in.is_empty() && lane.bank.is_idle() && lane.sa.is_idle()
            })
            && self.channels.iter().all(|c| c.is_idle())
    }

    /// Earliest future cycle at which this node can change state on its own
    /// (the event horizon). `None` means the node is fully drained and only
    /// external input can wake it; a driver may then fast-forward its clock.
    ///
    /// Conservative by construction — it may report a cycle earlier than the
    /// first real state change, but never later:
    ///
    /// * undrained completions, queued bank inputs, and pending scatter-add
    ///   memory ops are retried (and mutate stall counters) every cycle, so
    ///   any of them pins the horizon to `now + 1`;
    /// * otherwise the horizon is the minimum over every lane's horizon and
    ///   DRAM channel `next_event`. A lane ahead of the clock (after an
    ///   epoch) contributes its horizon *from its own time* — nothing
    ///   happens for it at the clock until then — and a lane parked at a
    ///   half-tick wakes exactly at the parked cycle;
    /// * when occupancy sampling is on, the horizon is clamped to the next
    ///   sample cycle so sampled series stay byte-identical under skipping.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let t = now.raw();
        if !self.completions.is_empty() {
            return Some(now + 1);
        }
        let mut horizon: Option<u64> = None;
        let mut fold = |e: u64| horizon = Some(horizon.map_or(e, |h| h.min(e)));
        if let Some((_, r)) = self.future_completions.front() {
            // Parked epoch completions migrate (and are drained) at their
            // own cycle.
            fold(r.at.raw());
        }
        for m in self.lanes.iter() {
            let lane = m.lock().expect("lane lock");
            if let Some(c) = lane.half_tick {
                fold(c);
                continue;
            }
            if lane.ran_until <= t {
                if !lane.bank_in.is_empty() || lane.sa.peek_to_mem().is_some() {
                    return Some(now + 1);
                }
                if let Some(h) = lane_horizon(&lane, t) {
                    fold(h);
                }
            } else if let Some(h) = lane_horizon(&lane, lane.ran_until) {
                fold(h);
            }
        }
        for c in &self.channels {
            if let Some(e) = c.next_event(now) {
                fold(e.raw());
            }
        }
        if self.sample_interval != 0 {
            fold(self.next_sample.max(t + 1));
        }
        horizon.map(Cycle)
    }

    /// Fold `skipped` provably-idle cycles (fast-forward) into time-weighted
    /// statistics, keeping them byte-identical with per-cycle ticking. The
    /// caller must have verified `now + skipped < next_event(now)` — i.e. no
    /// component changes state and no request is retried during the window.
    /// Lanes already ahead of the window (after an epoch) are left alone;
    /// lanes behind it fold forward from their own time.
    pub fn skip_cycles(&mut self, now: Cycle, skipped: u64) {
        debug_assert!(
            self.next_event(now).is_none_or(|e| e > now + skipped),
            "fast-forward skipped past a node event"
        );
        let target = now.raw() + skipped;
        for m in self.lanes.iter() {
            let mut lane = m.lock().expect("lane lock");
            if lane.ran_until < target {
                let from = lane.ran_until;
                fold_lane_to(&mut lane, from, target);
            }
        }
        for c in &mut self.channels {
            c.skip_idle(now, skipped);
        }
    }

    /// Aggregate statistics over all banks, units, and channels.
    pub fn stats(&self) -> NodeStats {
        let mut s = NodeStats::default();
        for m in self.lanes.iter() {
            let lane = m.lock().expect("lane lock");
            s.sa.merge(lane.sa.stats());
            s.resilience.merge(&lane.sa.resilience_stats());
        }
        for m in self.lanes.iter() {
            let lane = m.lock().expect("lane lock");
            s.cache.merge(lane.bank.stats());
            s.resilience.merge(&lane.bank.resilience_stats());
        }
        for c in &self.channels {
            s.dram.merge(c.stats());
            s.resilience.merge(&c.resilience_stats());
        }
        for m in self.lanes.iter() {
            s.bank_in
                .merge(m.lock().expect("lane lock").bank_in.stats());
        }
        s
    }

    /// Record per-instance metrics into a telemetry scope: one sub-scope per
    /// scatter-add unit / cache bank / DRAM channel / bank input queue, plus
    /// the node-level aggregates from [`NodeMemSys::stats`].
    pub fn record_metrics(&self, scope: &mut Scope<'_>) {
        for (b, m) in self.lanes.iter().enumerate() {
            m.lock()
                .expect("lane lock")
                .sa
                .stats()
                .record(&mut scope.scope(&format!("sa.unit{b}")));
        }
        for (b, m) in self.lanes.iter().enumerate() {
            m.lock()
                .expect("lane lock")
                .bank
                .stats()
                .record(&mut scope.scope(&format!("cache.bank{b}")));
        }
        for (c, ch) in self.channels.iter().enumerate() {
            ch.stats()
                .record(&mut scope.scope(&format!("dram.chan{c}")));
            ch.queue_stats()
                .record(&mut scope.scope(&format!("queue.dram.chan{c}")));
        }
        for (b, m) in self.lanes.iter().enumerate() {
            m.lock()
                .expect("lane lock")
                .bank_in
                .stats()
                .record(&mut scope.scope(&format!("queue.bank_in.bank{b}")));
        }
        self.stats().record(scope);
    }
}

impl<T: TraceSink> sa_telemetry::Inspectable for NodeMemSys<T> {
    fn probe_kind(&self) -> &'static str {
        "node_mem_sys"
    }

    /// The node's snapshot subtree: one child per scatter-add unit, cache
    /// bank, and DRAM channel (same `sa.unitN`/`cache.bankN`/`dram.chanN`
    /// naming as [`NodeMemSys::record_metrics`]), plus bank-input queue
    /// depths and the undrained completion count.
    fn probe_json(&self) -> sa_telemetry::Json {
        use sa_telemetry::{Json, ProbeRegistry};
        let mut o = Json::obj();
        o.push("node", Json::UInt(self.node as u64));
        o.push("completions", Json::UInt(self.completions.len() as u64));
        let bank_in: usize = self
            .lanes
            .iter()
            .map(|m| m.lock().expect("lane lock").bank_in.len())
            .sum();
        o.push("bank_in", Json::UInt(bank_in as u64));
        let mut children = ProbeRegistry::new();
        for (b, m) in self.lanes.iter().enumerate() {
            children.register(&format!("sa.unit{b}"), &m.lock().expect("lane lock").sa);
        }
        for (b, m) in self.lanes.iter().enumerate() {
            children.register(
                &format!("cache.bank{b}"),
                &m.lock().expect("lane lock").bank,
            );
        }
        for (c, ch) in self.channels.iter().enumerate() {
            children.register(&format!("dram.chan{c}"), ch);
        }
        o.push("components", children.into_components());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sim::{ScalarKind, ScatterOp};

    fn sa_req(id: u64, word: u64, val: i64) -> MemRequest {
        MemRequest {
            id,
            addr: Addr::from_word_index(word),
            op: MemOp::Scatter {
                bits: val as u64,
                kind: ScalarKind::I64,
                op: ScatterOp::Add,
                fetch: false,
            },
            origin: Origin::AddrGen { node: 0, ag: 0 },
        }
    }

    fn run_until_idle(
        node: &mut NodeMemSys,
        start: Cycle,
        limit: u64,
    ) -> (Vec<MemResponse>, Cycle) {
        let mut now = start;
        let mut done = Vec::new();
        for _ in 0..limit {
            now += 1;
            node.tick(now);
            while let Some(c) = node.pop_completion() {
                done.push(c);
            }
            if node.is_idle() {
                return (done, now);
            }
        }
        panic!("node did not drain in {limit} cycles");
    }

    #[test]
    fn scatter_adds_land_in_memory() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        // 16 adds spread over 4 words.
        let mut id = 0;
        let mut now = Cycle(0);
        let mut pending: VecDeque<MemRequest> = (0..16)
            .map(|i| {
                id += 1;
                sa_req(id, i % 4, 1)
            })
            .collect();
        let mut completions = Vec::new();
        for _ in 0..100_000 {
            now += 1;
            while let Some(req) = pending.pop_front() {
                if let Err(req) = node.inject(req) {
                    pending.push_front(req);
                    break;
                }
            }
            node.tick(now);
            while let Some(c) = node.pop_completion() {
                completions.push(c);
            }
            if pending.is_empty() && node.is_idle() {
                break;
            }
        }
        assert!(node.is_idle(), "node drained");
        assert_eq!(completions.len(), 16, "one ack per scatter request");
        node.flush_to_store();
        assert_eq!(
            node.store().extract_i64(Addr(0), 4),
            vec![4, 4, 4, 4],
            "all additions applied atomically"
        );
    }

    #[test]
    fn reads_and_writes_bypass_the_unit() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        node.store_mut().write_i64(Addr::from_word_index(3), 42);
        node.inject(MemRequest {
            id: 1,
            addr: Addr::from_word_index(3),
            op: MemOp::Read,
            origin: Origin::AddrGen { node: 0, ag: 0 },
        })
        .unwrap();
        node.inject(MemRequest {
            id: 2,
            addr: Addr::from_word_index(100),
            op: MemOp::Write { bits: 7 },
            origin: Origin::AddrGen { node: 0, ag: 0 },
        })
        .unwrap();
        let (done, _) = run_until_idle(&mut node, Cycle(0), 100_000);
        assert_eq!(done.len(), 2);
        let read = done.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(read.bits as i64, 42);
        assert_eq!(node.store().read_word(Addr::from_word_index(100)), 7);
        let s = node.stats();
        assert_eq!(s.sa.accepted, 0, "no scatter traffic touched the unit");
    }

    #[test]
    fn mixed_traffic_preserves_order_sensitive_results() {
        // Scatter-adds followed by a read of the same word: the read is
        // issued only after completions confirm the adds are done.
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        for i in 0..8 {
            node.inject(sa_req(i, 0, 1)).unwrap();
        }
        let (done, now) = run_until_idle(&mut node, Cycle(0), 100_000);
        assert_eq!(done.len(), 8);
        node.inject(MemRequest {
            id: 100,
            addr: Addr::from_word_index(0),
            op: MemOp::Read,
            origin: Origin::AddrGen { node: 0, ag: 0 },
        })
        .unwrap();
        let (done, _) = run_until_idle(&mut node, now, 100_000);
        assert_eq!(done[0].bits as i64, 8);
    }

    #[test]
    fn hot_word_serializes_but_stays_correct() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        let n = 64;
        let mut pending: VecDeque<MemRequest> = (0..n).map(|i| sa_req(i, 7, 1)).collect();
        let mut now = Cycle(0);
        let mut acked = 0;
        for _ in 0..1_000_000 {
            now += 1;
            while let Some(req) = pending.pop_front() {
                if let Err(req) = node.inject(req) {
                    pending.push_front(req);
                    break;
                }
            }
            node.tick(now);
            while node.pop_completion().is_some() {
                acked += 1;
            }
            if pending.is_empty() && node.is_idle() {
                break;
            }
        }
        assert_eq!(acked, n);
        node.flush_to_store();
        assert_eq!(node.store().read_i64(Addr::from_word_index(7)), n as i64);
        let s = node.stats();
        assert_eq!(s.sa.reads_issued + s.sa.chained, n, "one read, n-1 chains");
        assert!(
            s.sa.reads_issued < 5,
            "combining suppressed nearly all reads"
        );
    }

    #[test]
    fn combining_mode_zero_allocates_and_sums_back() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, true);
        for i in 0..8 {
            node.inject(sa_req(i, i % 2, 1)).unwrap();
        }
        let (_, _) = run_until_idle(&mut node, Cycle(0), 100_000);
        // In combining mode nothing reaches DRAM; the sums sit in the cache
        // as partial lines.
        assert_eq!(node.stats().dram.reads, 0, "zero-alloc avoids fills");
        let sums = node.flush_sum_backs();
        assert_eq!(sums.len(), 1, "both words share one line");
        assert_eq!(sums[0].data[0], 4);
        assert_eq!(sums[0].data[1], 4);
    }

    #[test]
    fn throughput_scales_with_banks() {
        // Uniform random-ish addresses across many lines: 8 banks must beat
        // a single hot bank by a wide margin.
        let cfg = MachineConfig::merrimac();
        let line_words = cfg.cache.words_per_line();
        // Word addresses that all land in bank 0 (hot) vs consecutive lines
        // (spread over all banks).
        let hot_words: Vec<u64> = (0..)
            .filter(|l| cfg.cache.bank_of_line(*l) == 0)
            .take(16)
            .map(|l| l * line_words)
            .collect();
        let spread_words: Vec<u64> = (0..16u64).map(|l| l * line_words).collect();
        let run = |words: &[u64]| {
            let mut node = NodeMemSys::new(cfg, 0, false);
            let n = 256u64;
            let mut pending: VecDeque<MemRequest> = (0..n)
                .map(|i| sa_req(i, words[(i % 16) as usize], 1))
                .collect();
            let mut now = Cycle(0);
            loop {
                now += 1;
                while let Some(req) = pending.pop_front() {
                    if let Err(req) = node.inject(req) {
                        pending.push_front(req);
                        break;
                    }
                }
                node.tick(now);
                while node.pop_completion().is_some() {}
                if pending.is_empty() && node.is_idle() {
                    return now.raw();
                }
            }
        };
        let spread = run(&spread_words);
        let hot = run(&hot_words);
        assert!(
            hot > spread * 3,
            "hot bank ({hot} cycles) should be much slower than spread ({spread} cycles)"
        );
    }

    #[test]
    #[should_panic(expected = "additive identity")]
    fn combining_rejects_non_add() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, true);
        let req = MemRequest {
            id: 1,
            addr: Addr(0),
            op: MemOp::Scatter {
                bits: 0,
                kind: ScalarKind::I64,
                op: ScatterOp::Max,
                fetch: false,
            },
            origin: Origin::AddrGen { node: 0, ag: 0 },
        };
        let _ = node.inject(req);
    }

    #[test]
    fn back_pressure_rejects_when_bank_queue_full() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        // All to one bank (same line), never ticking.
        let mut rejected = false;
        for i in 0..100 {
            if node.inject(sa_req(i, 0, 1)).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "bank input queue must be bounded");
    }

    #[test]
    fn request_lifecycle_traced_end_to_end() {
        let mut cfg = MachineConfig::merrimac();
        cfg.req_sample = 1;
        let mut node = NodeMemSys::new(cfg, 0, false);
        let mut pending: VecDeque<MemRequest> = (0..32).map(|i| sa_req(i, i % 8, 1)).collect();
        let mut now = Cycle(0);
        for _ in 0..100_000 {
            now += 1;
            while let Some(req) = pending.pop_front() {
                if let Err(req) = node.inject_traced(req, now) {
                    pending.push_front(req);
                    break;
                }
            }
            node.tick(now);
            while node.pop_completion().is_some() {}
            if pending.is_empty() && node.is_idle() {
                break;
            }
        }
        assert!(node.is_idle());
        let t = node.req_tracer();
        assert_eq!(t.retired_len(), 32, "every sampled request retired");
        assert_eq!(t.live_len(), 0, "nothing left in flight");
        for rec in t.retired_records() {
            assert_eq!(rec.stamps.first().map(|&(s, _)| s), Some(ReqStage::Issued));
            assert!(rec.is_retired());
            assert!(
                rec.stamps.windows(2).all(|w| w[0].1 <= w[1].1),
                "stage timestamps monotone for request {}: {:?}",
                rec.id,
                rec.stamps
            );
            assert!(
                rec.stamp_at(ReqStage::CombStore).is_some(),
                "scatter request {} passed through the combining store",
                rec.id
            );
        }
        // Chain heads reach DRAM via their current-value read; at least one
        // request per hot word must carry a Dram stamp.
        assert!(
            t.retired_records()
                .any(|r| r.stamp_at(ReqStage::Dram).is_some()),
            "demand fills attributed to originating requests"
        );
    }

    #[test]
    fn untraced_node_records_nothing() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        let mut now = Cycle(0);
        for i in 0..8 {
            node.inject_traced(sa_req(i, i, 1), now).unwrap();
        }
        let mut pending: VecDeque<MemRequest> = VecDeque::new();
        for _ in 0..100_000 {
            now += 1;
            while let Some(req) = pending.pop_front() {
                if let Err(req) = node.inject_traced(req, now) {
                    pending.push_front(req);
                    break;
                }
            }
            node.tick(now);
            while node.pop_completion().is_some() {}
            if node.is_idle() {
                break;
            }
        }
        assert_eq!(node.req_tracer().issued_len(), 0);
    }

    #[test]
    fn recoverable_faults_leave_results_bit_identical() {
        // ECC faults on DRAM reads plus combining-store stalls: the run gets
        // slower and the resilience counters move, but every architectural
        // result (memory image, completion count) matches the clean run.
        let plan = FaultPlan::parse(
            r#"{"schema":"sa-faultplan","version":1,"seed":33,"cs_timeout":32,
                "faults":[{"kind":"ecc_single","period":3},
                          {"kind":"ecc_double","period":4},
                          {"kind":"cs_stall","cycles":20,"period":2}]}"#,
        )
        .expect("valid plan");
        let run = |plan: Option<&FaultPlan>| {
            let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
            if let Some(p) = plan {
                node.set_fault_plan(p);
            }
            let mut pending: VecDeque<MemRequest> = (0..96)
                .map(|i| sa_req(i, i % 24, 1 + (i as i64 % 5)))
                .collect();
            let mut now = Cycle(0);
            let mut acked = 0u64;
            for _ in 0..1_000_000 {
                now += 1;
                while let Some(req) = pending.pop_front() {
                    if let Err(req) = node.inject(req) {
                        pending.push_front(req);
                        break;
                    }
                }
                node.tick(now);
                while node.pop_completion().is_some() {
                    acked += 1;
                }
                if pending.is_empty() && node.is_idle() {
                    break;
                }
            }
            assert!(node.is_idle(), "node drained");
            node.flush_to_store();
            let image = node.store().extract_i64(Addr(0), 24);
            (image, acked, now.raw(), node.stats())
        };
        let (image_clean, acked_clean, t_clean, stats_clean) = run(None);
        let (image_fault, acked_fault, t_fault, stats_fault) = run(Some(&plan));
        assert!(stats_clean.resilience.is_zero());
        let res = stats_fault.resilience;
        assert!(res.ecc_corrected > 0, "single-bit faults fired: {res:?}");
        assert!(res.ecc_detected > 0, "double-bit faults fired: {res:?}");
        assert!(
            res.mshr_replays > 0,
            "poisoned fills were replayed: {res:?}"
        );
        assert!(res.cs_stalls > 0, "combining-store stalls fired: {res:?}");
        assert_eq!(image_clean, image_fault, "results must be bit-identical");
        assert_eq!(acked_clean, acked_fault);
        assert!(
            t_fault > t_clean,
            "faulty run ({t_fault}) must be slower than clean ({t_clean})"
        );
    }

    #[test]
    fn stats_aggregate_across_banks() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        for i in 0..32 {
            node.inject(sa_req(i, i, 1)).unwrap();
        }
        let (_, _) = run_until_idle(&mut node, Cycle(0), 100_000);
        let s = node.stats();
        assert_eq!(s.sa.accepted, 32);
        assert_eq!(s.sa.writes_issued, 32);
        assert!(s.dram.reads > 0);
    }

    /// Every observable of a full kernel run — ack cycle, drain cycle,
    /// aggregated stats, fetched completions in drain order, and the final
    /// memory image — is identical for every intra-node thread count,
    /// crossed with fast-forward (which enables epoch lookahead) on/off.
    #[test]
    fn intra_node_threads_are_byte_identical() {
        let mut rng = sa_sim::Rng64::new(0xBEEF_0001);
        let n = 512usize;
        let kernel = crate::ScatterKernel {
            base_word: 0,
            indices: (0..n).map(|_| rng.below(64)).collect(),
            values: (0..n).map(|_| rng.below(100) + 1).collect(),
            kind: ScalarKind::I64,
            op: ScatterOp::Add,
        };
        let cfg = MachineConfig::merrimac();
        let mut reference = None;
        for threads in [1usize, 2, 3, 4, 8] {
            for ff in [false, true] {
                let mut node = NodeMemSys::new(cfg, 0, false);
                node.set_node_threads(threads);
                node.set_fast_forward(ff);
                let run = crate::drive_scatter_with(node, &kernel, true);
                let key = (
                    run.cycles,
                    run.drain_cycles,
                    run.stats,
                    run.fetched.clone(),
                    run.result_i64(64),
                );
                match &reference {
                    None => reference = Some(key),
                    Some(r) => {
                        assert_eq!(*r, key, "threads={threads} ff={ff} diverged");
                    }
                }
            }
        }
    }

    /// The parallel step path also composes with fault injection: the
    /// schedules are keyed by (seed, site, node, component), never by
    /// stepping order, so a faulty run is invariant under thread count.
    #[test]
    fn intra_node_threads_are_byte_identical_under_faults() {
        let kernel = crate::ScatterKernel {
            base_word: 0,
            indices: (0..256u64).map(|i| i % 16).collect(),
            values: vec![1; 256],
            kind: ScalarKind::I64,
            op: ScatterOp::Add,
        };
        let plan = FaultPlan::parse(
            r#"{"schema":"sa-faultplan","version":1,"seed":4099,"cs_timeout":48,"faults":[
                {"kind":"ecc_single","period":7},
                {"kind":"cs_stall","cycles":24,"period":11,"max":25}
            ]}"#,
        )
        .expect("valid plan");
        let cfg = MachineConfig::merrimac();
        let mut reference = None;
        for threads in [1usize, 4] {
            for ff in [false, true] {
                let mut node = NodeMemSys::new(cfg, 0, false);
                node.set_fault_plan(&plan);
                node.set_node_threads(threads);
                node.set_fast_forward(ff);
                let run = crate::drive_scatter_with(node, &kernel, false);
                let key = (run.cycles, run.drain_cycles, run.stats, run.result_i64(16));
                match &reference {
                    None => reference = Some(key),
                    Some(r) => {
                        assert_eq!(*r, key, "threads={threads} ff={ff} diverged");
                    }
                }
            }
        }
    }
}
