//! One node's memory system: address-interleaved cache banks, a scatter-add
//! unit in front of each bank (Figure 4a), and the DRAM channels behind them.

use std::collections::VecDeque;

use sa_cache::{AccessKind, CacheAccess, CacheBank, CacheStats, SumBack};
use sa_faults::{FaultPlan, FaultSite, ResilienceStats};
use sa_mem::{BackingStore, DramChannel, DramStats};
use sa_sim::{
    Addr, BoundedQueue, Cycle, MachineConfig, MemOp, MemRequest, MemResponse, Origin, QueueStats,
};
use sa_telemetry::{NullTrace, ReqStage, ReqTracer, Scope, SeriesSet, TraceSink};

use crate::unit::{SaStats, ScatterAddUnit, ToMem};

/// Depth of each bank's input queue (requests from the address generators
/// and, in multi-node runs, the network interface).
const BANK_IN_DEPTH: usize = 8;

/// Sampling interval (cycles) used when a tracer is installed without an
/// explicit [`NodeMemSys::set_sample_interval`] call.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 64;

/// Aggregated statistics of a [`NodeMemSys`] run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Merged scatter-add unit counters.
    pub sa: SaStats,
    /// Merged cache bank counters.
    pub cache: CacheStats,
    /// Merged DRAM channel counters.
    pub dram: DramStats,
    /// Merged bank input queue statistics.
    pub bank_in: QueueStats,
    /// Merged resilience counters (ECC corrections, MSHR replays, stalls);
    /// all zero unless a fault plan is installed.
    pub resilience: ResilienceStats,
}

impl NodeStats {
    /// Total DRAM words moved (the "Mem References" the paper reports count
    /// word accesses issued by the program; this counts actual DRAM traffic).
    pub fn dram_words(&self) -> u64 {
        self.dram.words_transferred
    }

    /// Record the aggregated counters into a telemetry scope, under the
    /// `sa.*`, `cache.*`, `dram.*`, and `queue.bank_in.*` sub-scopes.
    /// Resilience counters appear under `resilience.*` only when nonzero,
    /// so fault-free runs keep byte-identical stats output.
    pub fn record(&self, scope: &mut Scope<'_>) {
        self.sa.record(&mut scope.scope("sa"));
        self.cache.record(&mut scope.scope("cache"));
        self.dram.record(&mut scope.scope("dram"));
        self.bank_in.record(&mut scope.scope("queue.bank_in"));
        if !self.resilience.is_zero() {
            self.resilience.record(&mut scope.scope("resilience"));
        }
    }
}

/// A single node of the clustered data-parallel machine (Figure 2): the
/// memory-side of one stream processor.
///
/// Requests are injected per cycle by the address generators (or by the
/// simple driver in [`drive_scatter`](crate::drive_scatter)); completions are
/// drained with [`pop_completion`](Self::pop_completion). Scatter requests
/// are acknowledged when their addition is performed inside the scatter-add
/// unit; plain writes are posted (acknowledged on acceptance by the cache);
/// reads complete when data returns.
#[derive(Debug)]
pub struct NodeMemSys<T: TraceSink = NullTrace> {
    cfg: MachineConfig,
    node: usize,
    combining: bool,
    banks: Vec<CacheBank>,
    sa: Vec<ScatterAddUnit>,
    channels: Vec<DramChannel>,
    store: BackingStore,
    bank_in: Vec<BoundedQueue<MemRequest>>,
    completions: VecDeque<MemResponse>,
    rr_sa_first: Vec<bool>,
    /// Node count when part of a multi-node machine (`None` = standalone).
    /// With homing installed, combining mode only zero-allocates *remote*
    /// lines — locally-homed scatter-adds (including arriving sum-backs)
    /// read their true memory value (§3.2: "if a remote memory value has to
    /// be brought into the cache, it is simply allocated with a value of
    /// 0"). Without homing, a combining node treats every line as
    /// combinable (the single-node testing configuration).
    n_nodes: Option<usize>,
    tracer: T,
    /// Request-lifecycle tracer (see [`ReqTracer`]); disabled unless
    /// [`MachineConfig::req_sample`] or [`set_req_sample`](Self::set_req_sample)
    /// turns it on. Runtime-gated so the untraced hot loop pays one integer
    /// compare per stamp site.
    req_trace: ReqTracer,
    /// Cycles between occupancy samples; 0 disables sampling entirely, so
    /// the untraced hot loop pays a single integer compare per tick.
    sample_interval: u64,
    next_sample: u64,
    series: SeriesSet,
    /// Per-channel `words_transferred` at the previous sample, for bus
    /// utilization deltas.
    last_dram_words: Vec<u64>,
    /// Whether run loops driving this node may fast-forward over cycles in
    /// which [`NodeMemSys::next_event`] proves nothing can change. Seeded
    /// from [`sa_sim::fast_forward_default`] at construction.
    fast_forward: bool,
    /// Whether a non-empty fault plan is installed (gates the per-tick
    /// watchdog scan so fault-free runs pay one branch).
    faults_active: bool,
    /// Watchdog threshold for fault-injected combining-store stalls.
    cs_timeout: u64,
}

impl NodeMemSys {
    /// Build the memory system of node `node` with configuration `cfg`,
    /// without tracing (the [`NullTrace`] sink).
    ///
    /// `combining` enables the multi-node cache-combining optimization of
    /// §3.2: scatter-add targets are zero-allocated in the local cache and
    /// evictions become [`SumBack`]s. Combining only supports
    /// [`ScatterOp::Add`](sa_sim::ScatterOp::Add) (zero is its identity).
    pub fn new(cfg: MachineConfig, node: usize, combining: bool) -> NodeMemSys {
        NodeMemSys::with_tracer(cfg, node, combining, NullTrace)
    }
}

impl<T: TraceSink> NodeMemSys<T> {
    /// Build the memory system with an event-trace sink attached. Sampling
    /// starts at [`DEFAULT_SAMPLE_INTERVAL`]; tune with
    /// [`set_sample_interval`](Self::set_sample_interval).
    pub fn with_tracer(
        cfg: MachineConfig,
        node: usize,
        combining: bool,
        tracer: T,
    ) -> NodeMemSys<T> {
        let banks = (0..cfg.cache.banks)
            .map(|b| CacheBank::new(cfg.cache, node, b))
            .collect();
        let sa = (0..cfg.cache.banks)
            .map(|_| ScatterAddUnit::new(cfg.sa))
            .collect();
        let channels = (0..cfg.dram.channels)
            .map(|_| DramChannel::new(cfg.dram))
            .collect();
        let bank_in = (0..cfg.cache.banks)
            .map(|_| BoundedQueue::new(BANK_IN_DEPTH))
            .collect();
        let sample_interval = if T::ENABLED {
            DEFAULT_SAMPLE_INTERVAL
        } else {
            0
        };
        let mut sys = NodeMemSys {
            node,
            combining,
            banks,
            sa,
            channels,
            store: BackingStore::new(),
            bank_in,
            completions: VecDeque::new(),
            rr_sa_first: vec![false; cfg.cache.banks],
            n_nodes: None,
            tracer,
            req_trace: ReqTracer::every(cfg.req_sample),
            sample_interval,
            next_sample: 0,
            series: SeriesSet::new(sample_interval),
            last_dram_words: vec![0; cfg.dram.channels],
            fast_forward: sa_sim::fast_forward_default(),
            faults_active: false,
            cs_timeout: sa_faults::DEFAULT_CS_TIMEOUT,
            cfg,
        };
        if let Some(plan) = sa_faults::default_plan() {
            sys.set_fault_plan(&plan);
        }
        sys
    }

    /// Install the fault plan's schedules for this node: per-channel DRAM
    /// ECC faults, per-unit combining-store stalls, and the stall watchdog
    /// threshold. [`NodeMemSys::with_tracer`] applies the process-wide
    /// [`sa_faults::default_plan`] automatically; call this to override it.
    /// Every schedule is keyed by `(plan seed, site, node, component)`, so
    /// fault decisions are reproducible regardless of stepping order or
    /// fast-forward.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for (c, ch) in self.channels.iter_mut().enumerate() {
            ch.set_fault_injector(plan.injector(FaultSite::DramRead, self.node as u64, c as u64));
        }
        for (b, u) in self.sa.iter_mut().enumerate() {
            u.set_fault_injector(plan.injector(FaultSite::CsEntry, self.node as u64, b as u64));
        }
        self.cs_timeout = plan.cs_timeout;
        self.faults_active = !plan.is_empty();
    }

    /// Enable or disable event-horizon fast-forward for run loops driving
    /// this node (wall-clock only; simulated results are identical either
    /// way). Overrides the process-wide default for this instance.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Whether run loops may fast-forward over provably-idle cycles.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Set the occupancy sampling interval in cycles (0 disables sampling).
    pub fn set_sample_interval(&mut self, interval: u64) {
        self.sample_interval = interval;
        self.next_sample = 0;
        self.series = SeriesSet::new(interval);
    }

    /// The cycle-sampled occupancy series gathered so far.
    pub fn series(&self) -> &SeriesSet {
        &self.series
    }

    /// The attached trace sink.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Consume the node and return its trace sink.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Set the request-lifecycle sampling interval: one in `sample` requests
    /// is traced (0 disables). Overrides [`MachineConfig::req_sample`].
    pub fn set_req_sample(&mut self, sample: u64) {
        self.req_trace = ReqTracer::every(sample);
    }

    /// The request-lifecycle records gathered so far.
    pub fn req_tracer(&self) -> &ReqTracer {
        &self.req_trace
    }

    /// Take the request-lifecycle tracer, leaving a disabled one behind
    /// (harvested into run reports at the end of a kernel).
    pub fn take_req_trace(&mut self) -> ReqTracer {
        std::mem::take(&mut self.req_trace)
    }

    /// Declare this node part of an `n`-node machine with line-interleaved
    /// address homing (`home = line mod n`). Affects which lines combining
    /// mode treats as remote.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the node index is out of range.
    pub fn set_nodes(&mut self, n: usize) {
        assert!(n > 0, "need at least one node");
        assert!(self.node < n, "node index {} out of range {n}", self.node);
        self.n_nodes = Some(n);
    }

    /// The home node of an address under line-interleaved homing
    /// (this node when homing is not installed).
    pub fn home_of(&self, addr: Addr) -> usize {
        match self.n_nodes {
            Some(n) => (addr.line_index(self.cfg.cache.line_bytes) % n as u64) as usize,
            None => self.node,
        }
    }

    /// Whether combining mode treats `addr` as remote (zero-allocate +
    /// sum-back). A home-owned line is never combined: applying it through
    /// the cache with a real fill is what lets arriving sum-backs terminate
    /// (zero-allocating them would recurse through eviction forever).
    ///
    /// An associated fn (not a method) so [`try_serve_sa`](Self::try_serve_sa)
    /// can call it while the bank is mutably borrowed.
    fn combine_as_remote(
        combining: bool,
        n_nodes: Option<usize>,
        line_bytes: u64,
        node: usize,
        addr: Addr,
    ) -> bool {
        combining
            && match n_nodes {
                None => true,
                Some(n) => (addr.line_index(line_bytes) % n as u64) as usize != node,
            }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// This node's index.
    pub fn node_index(&self) -> usize {
        self.node
    }

    /// The bank that serves `addr`.
    pub fn bank_of(&self, addr: Addr) -> usize {
        self.cfg
            .cache
            .bank_of_line(addr.line_index(self.cfg.cache.line_bytes))
    }

    /// Functional view of this node's memory (for loading inputs and
    /// checking results).
    pub fn store(&self) -> &BackingStore {
        &self.store
    }

    /// Mutable functional view of this node's memory.
    pub fn store_mut(&mut self) -> &mut BackingStore {
        &mut self.store
    }

    /// Inject one request into its bank's input queue.
    ///
    /// # Errors
    ///
    /// Returns the request back when the bank queue is full (the address
    /// generator stalls).
    ///
    /// # Panics
    ///
    /// Panics if a scatter request uses a non-`Add` reduction while the node
    /// is in combining mode (zero-allocate assumes the additive identity).
    pub fn inject(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        if self.combining {
            if let MemOp::Scatter { op, .. } = req.op {
                assert_eq!(
                    op,
                    sa_sim::ScatterOp::Add,
                    "cache combining requires the additive identity"
                );
            }
        }
        let bank = self.bank_of(req.addr);
        self.bank_in[bank].try_push(req)
    }

    /// [`inject`](Self::inject), recording the request's lifecycle: an
    /// [`ReqStage::Issued`] stamp on the first attempt (idempotent across
    /// stall retries) and an [`ReqStage::Enqueued`] stamp on acceptance.
    ///
    /// # Errors
    ///
    /// Returns the request back when the bank queue is full, exactly as
    /// [`inject`](Self::inject) does.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`inject`](Self::inject).
    pub fn inject_traced(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest> {
        let id = req.id;
        self.req_trace.issue(id, self.node, now.raw());
        let r = self.inject(req);
        if r.is_ok() {
            self.req_trace.stamp(id, ReqStage::Enqueued, now.raw());
        }
        r
    }

    /// Whether bank `bank`'s input queue can take one more request.
    pub fn can_inject(&self, addr: Addr) -> bool {
        self.bank_in[self.bank_of(addr)].can_accept()
    }

    /// Free input-queue slots at the bank serving `addr` — all words of one
    /// cache line share a bank, so a caller injecting a whole line (a
    /// sum-back application) must check this against the word count.
    pub fn inject_capacity(&self, addr: Addr) -> usize {
        self.bank_in[self.bank_of(addr)].free()
    }

    /// Advance the whole memory system by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        // 0. Fold elapsed time into the input queues' occupancy integrals.
        for q in &mut self.bank_in {
            q.advance(now.raw());
        }

        // 1. DRAM channels produce fills / acknowledgements.
        for ch in &mut self.channels {
            if let Some(resp) = ch.tick(now, &mut self.store) {
                match resp.origin {
                    Origin::CacheBank { bank, .. } => self.banks[bank].on_mem_response(resp),
                    other => panic!("unexpected DRAM response origin {other:?}"),
                }
            }
        }

        for b in 0..self.banks.len() {
            // 2. Install pending fills.
            self.banks[b].tick(now);

            // 3. Move one outgoing DRAM command toward its channel (a single
            //    conditional pop: the head stays queued when its channel is
            //    busy).
            let line_bytes = self.cfg.cache.line_bytes;
            let dram_cfg = self.cfg.dram;
            let channels = &self.channels;
            if let Some(cmd) = self.banks[b].pop_mem_cmd_if(|cmd| {
                channels[dram_cfg.channel_of_line(cmd.base.line_index(line_bytes))].can_accept()
            }) {
                if let Some(rid) = cmd.req {
                    self.req_trace.stamp(rid, ReqStage::Dram, now.raw());
                }
                let ch = dram_cfg.channel_of_line(cmd.base.line_index(line_bytes));
                self.channels[ch]
                    .try_submit(cmd, now)
                    .expect("capacity checked");
            }

            // 4. Ingest a scatter request into the scatter-add unit (does not
            //    consume the cache port; Figure 4a places the unit in front
            //    of the bank). Single conditional pop: the head is consumed
            //    exactly when the unit accepts it.
            let sa = &mut self.sa[b];
            let req_trace = &mut self.req_trace;
            self.bank_in[b].pop_if(|req| {
                req.op.is_scatter() && sa.try_submit_traced(*req, now, req_trace).is_ok()
            });

            // 5. One cache access per bank per cycle, round-robin between the
            //    scatter-add unit's internal traffic and bypass traffic.
            let sa_first = self.rr_sa_first[b];
            let mut served = false;
            for attempt in 0..2 {
                let serve_sa = sa_first ^ (attempt == 1);
                if serve_sa {
                    if self.try_serve_sa(b, now) {
                        served = true;
                        break;
                    }
                } else if self.try_serve_bypass(b, now) {
                    served = true;
                    break;
                }
            }
            if served {
                self.rr_sa_first[b] = !sa_first;
            }

            // 6. Advance the scatter-add unit; with faults installed, the
            //    watchdog first expires any stall that outlived its budget.
            if self.faults_active {
                self.sa[b].cancel_stalls_older_than(now, self.cs_timeout);
            }
            self.sa[b].tick_traced(now, &mut self.req_trace);

            // 7. Route cache data responses.
            while let Some(r) = self.banks[b].pop_ready(now) {
                match r.origin {
                    Origin::SaUnit { bank, .. } => {
                        debug_assert_eq!(bank, b);
                        self.sa[b].on_value(r.addr, r.bits);
                    }
                    _ => {
                        self.retire_req(r.id, now);
                        self.completions.push_back(r);
                    }
                }
            }

            // 8. Scatter acknowledgements complete their requests.
            while let Some(a) = self.sa[b].pop_ack() {
                self.retire_req(a.id, now);
                self.completions.push_back(a);
            }
        }

        // 9. Occupancy sampling (off unless a sample interval is set).
        if self.sample_interval != 0 && now.raw() >= self.next_sample {
            self.next_sample = now.raw() + self.sample_interval;
            self.sample(now);
        }
    }

    /// Take one occupancy sample: per-bank queue and combining-store levels,
    /// per-channel bus words, and whole-node series.
    fn sample(&mut self, now: Cycle) {
        let node = self.node;
        let cycle = now.raw();
        let mut queue_occ = 0u64;
        let mut cs_residency = 0u64;
        let mut fu_depth = 0u64;
        for b in 0..self.banks.len() {
            let q = self.bank_in[b].len() as u64;
            let cs = self.sa[b].occupancy() as u64;
            queue_occ += q;
            cs_residency += cs;
            fu_depth += self.sa[b].fu_depth() as u64;
            if self.tracer.enabled() {
                let track = format!("node{node}.cache.bank{b}");
                self.tracer
                    .counter(&track, "queue_occupancy", cycle, q as f64);
                self.tracer
                    .counter(&track, "cs_residency", cycle, cs as f64);
            }
        }
        let mut bus_words = 0u64;
        for c in 0..self.channels.len() {
            let words = self.channels[c].stats().words_transferred;
            let delta = words - self.last_dram_words[c];
            self.last_dram_words[c] = words;
            bus_words += delta;
            if self.tracer.enabled() {
                let track = format!("node{node}.dram.chan{c}");
                self.tracer
                    .counter(&track, "bus_words", cycle, delta as f64);
            }
        }
        // Fraction of the node's peak DRAM bandwidth used this interval.
        let peak_words = self.cfg.dram.channel_rate.words_per_cycle()
            * self.channels.len() as f64
            * self.sample_interval as f64;
        let bus_util = if peak_words > 0.0 {
            bus_words as f64 / peak_words
        } else {
            0.0
        };
        let prefix = format!("node{node}");
        self.series.push(
            &format!("{prefix}.queue.bank_in.occupancy"),
            cycle,
            queue_occ as f64,
        );
        self.series.push(
            &format!("{prefix}.sa.cs_residency"),
            cycle,
            cs_residency as f64,
        );
        self.series
            .push(&format!("{prefix}.sa.fu_depth"), cycle, fu_depth as f64);
        self.series
            .push(&format!("{prefix}.dram.bus_util"), cycle, bus_util);
    }

    /// Retire a traced request and stream its per-stage spans into the trace
    /// sink (one Perfetto track per request, scoped by node id).
    fn retire_req(&mut self, id: u64, now: Cycle) {
        if let Some(rec) = self.req_trace.retire(id, now.raw()) {
            sa_telemetry::emit_req_spans(rec, &mut self.tracer);
        }
    }

    /// Serve one of the scatter-add unit's memory operations at bank `b`'s
    /// cache port. Returns whether the port was used (a single conditional
    /// pop: the head op stays queued when the cache port rejects it).
    fn try_serve_sa(&mut self, b: usize, now: Cycle) -> bool {
        let node = self.node;
        let combining = self.combining;
        let n_nodes = self.n_nodes;
        let line_bytes = self.cfg.cache.line_bytes;
        let combine_as_remote =
            |addr: Addr| Self::combine_as_remote(combining, n_nodes, line_bytes, node, addr);
        let bank = &mut self.banks[b];
        let req_trace = &mut self.req_trace;
        self.sa[b]
            .pop_to_mem_if(|op| {
                let origin = Origin::SaUnit { node, bank: b };
                let access = match *op {
                    ToMem::Read { id, addr } => CacheAccess {
                        id,
                        addr,
                        kind: AccessKind::Read {
                            zero_alloc: combine_as_remote(addr),
                        },
                        origin,
                    },
                    ToMem::Write { id, addr, bits } => CacheAccess {
                        id,
                        addr,
                        kind: AccessKind::Write {
                            bits,
                            partial_sum: combine_as_remote(addr),
                        },
                        origin,
                    },
                };
                bank.try_access_traced(access, now, req_trace).is_ok()
            })
            .is_some()
    }

    /// Serve one bypass (non-scatter) request at bank `b`'s cache port.
    /// Returns whether the port was used (a single conditional pop: the
    /// head request stays queued when the cache port rejects it).
    fn try_serve_bypass(&mut self, b: usize, now: Cycle) -> bool {
        let bank = &mut self.banks[b];
        let req_trace = &mut self.req_trace;
        let served = self.bank_in[b].pop_if(|req| {
            let access = match req.op {
                MemOp::Read => CacheAccess {
                    id: req.id,
                    addr: req.addr,
                    kind: AccessKind::Read { zero_alloc: false },
                    origin: req.origin,
                },
                MemOp::Write { bits } => CacheAccess {
                    id: req.id,
                    addr: req.addr,
                    kind: AccessKind::Write {
                        bits,
                        partial_sum: false,
                    },
                    origin: req.origin,
                },
                MemOp::Scatter { .. } => return false,
            };
            bank.try_access_traced(access, now, req_trace).is_ok()
        });
        match served {
            Some(req) => {
                if matches!(req.op, MemOp::Write { .. }) {
                    // Posted write: acknowledged on acceptance.
                    self.retire_req(req.id, now);
                    self.completions.push_back(MemResponse {
                        id: req.id,
                        addr: req.addr,
                        bits: 0,
                        origin: req.origin,
                        at: now,
                    });
                }
                true
            }
            None => false,
        }
    }

    /// Next completed request (scatter ack, read data, or posted write ack).
    pub fn pop_completion(&mut self) -> Option<MemResponse> {
        self.completions.pop_front()
    }

    /// Next evicted partial-sum line from any bank (combining mode); the
    /// multi-node system forwards these to the home node.
    pub fn pop_sum_back(&mut self) -> Option<(usize, SumBack)> {
        for (b, bank) in self.banks.iter_mut().enumerate() {
            if let Some(sb) = bank.pop_sum_back() {
                return Some((b, sb));
            }
        }
        None
    }

    /// Flush every partial-sum line from every bank — the final
    /// flush-with-sum-back synchronization step of §3.2.
    pub fn flush_sum_backs(&mut self) -> Vec<SumBack> {
        self.banks
            .iter_mut()
            .flat_map(|b| b.flush_sum_backs())
            .collect()
    }

    /// Write every dirty cache line back into the functional store and
    /// invalidate the cache — the zero-time verification flush used at the
    /// end of a run so [`NodeMemSys::store`] shows the coherent image.
    /// Partial-sum lines (combining mode) are *not* flushed here; use
    /// [`NodeMemSys::flush_sum_backs`] for those.
    pub fn flush_to_store(&mut self) {
        for b in 0..self.banks.len() {
            for (base, data) in self.banks[b].flush_dirty() {
                self.store.write_line(base, &data);
            }
        }
    }

    /// Coherent read of one word: the cache copy if resident, else memory.
    pub fn read_coherent(&self, addr: Addr) -> u64 {
        let bank = self.bank_of(addr);
        self.banks[bank]
            .probe(addr)
            .unwrap_or_else(|| self.store.read_word(addr))
    }

    /// Whether every queue, bank, unit, and channel is empty (completions
    /// included — drain them first).
    pub fn is_idle(&self) -> bool {
        self.completions.is_empty()
            && self.bank_in.iter().all(|q| q.is_empty())
            && self.banks.iter().all(|b| b.is_idle())
            && self.sa.iter().all(|u| u.is_idle())
            && self.channels.iter().all(|c| c.is_idle())
    }

    /// Earliest future cycle at which this node can change state on its own
    /// (the event horizon). `None` means the node is fully drained and only
    /// external input can wake it; a driver may then fast-forward its clock.
    ///
    /// Conservative by construction — it may report a cycle earlier than the
    /// first real state change, but never later:
    ///
    /// * undrained completions, queued bank inputs, and pending scatter-add
    ///   memory ops are retried (and mutate stall counters) every cycle, so
    ///   any of them pins the horizon to `now + 1`;
    /// * otherwise the horizon is the minimum over every scatter-add unit,
    ///   cache bank, and DRAM channel `next_event`;
    /// * when occupancy sampling is on, the horizon is clamped to the next
    ///   sample cycle so sampled series stay byte-identical under skipping.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.completions.is_empty()
            || self.bank_in.iter().any(|q| !q.is_empty())
            || self.sa.iter().any(|u| u.peek_to_mem().is_some())
        {
            return Some(now + 1);
        }
        let mut horizon: Option<Cycle> = None;
        let mut fold = |t: Option<Cycle>| {
            if let Some(t) = t {
                horizon = Some(horizon.map_or(t, |h| h.min(t)));
            }
        };
        for u in &self.sa {
            fold(u.next_event(now));
        }
        for b in &self.banks {
            fold(b.next_event(now));
        }
        for c in &self.channels {
            fold(c.next_event(now));
        }
        if self.sample_interval != 0 {
            fold(Some(Cycle(self.next_sample.max(now.raw() + 1))));
        }
        horizon
    }

    /// Fold `skipped` provably-idle cycles (fast-forward) into time-weighted
    /// statistics, keeping them byte-identical with per-cycle ticking. The
    /// caller must have verified `now + skipped < next_event(now)` — i.e. no
    /// component changes state and no request is retried during the window.
    pub fn skip_cycles(&mut self, now: Cycle, skipped: u64) {
        debug_assert!(
            self.next_event(now).is_none_or(|t| t > now + skipped),
            "fast-forward skipped past a node event"
        );
        for u in &mut self.sa {
            u.skip_cycles(now, skipped, false);
        }
        for b in &mut self.banks {
            b.skip_cycles(now, skipped);
        }
        for c in &mut self.channels {
            c.skip_idle(now, skipped);
        }
        // The bank input queues are empty during a skip window, but their
        // occupancy integral folds lazily on the next tick — and callers
        // inject *before* ticking, so a post-skip push would otherwise be
        // weighted across the whole window. Advance them (at occupancy 0)
        // to the end of the window now.
        for q in &mut self.bank_in {
            q.advance(now.raw() + skipped);
        }
    }

    /// Aggregate statistics over all banks, units, and channels.
    pub fn stats(&self) -> NodeStats {
        let mut s = NodeStats::default();
        for u in &self.sa {
            s.sa.merge(u.stats());
            s.resilience.merge(&u.resilience_stats());
        }
        for b in &self.banks {
            s.cache.merge(b.stats());
            s.resilience.merge(&b.resilience_stats());
        }
        for c in &self.channels {
            s.dram.merge(c.stats());
            s.resilience.merge(&c.resilience_stats());
        }
        for q in &self.bank_in {
            s.bank_in.merge(q.stats());
        }
        s
    }

    /// Record per-instance metrics into a telemetry scope: one sub-scope per
    /// scatter-add unit / cache bank / DRAM channel / bank input queue, plus
    /// the node-level aggregates from [`NodeMemSys::stats`].
    pub fn record_metrics(&self, scope: &mut Scope<'_>) {
        for (b, u) in self.sa.iter().enumerate() {
            u.stats().record(&mut scope.scope(&format!("sa.unit{b}")));
        }
        for (b, bank) in self.banks.iter().enumerate() {
            bank.stats()
                .record(&mut scope.scope(&format!("cache.bank{b}")));
        }
        for (c, ch) in self.channels.iter().enumerate() {
            ch.stats()
                .record(&mut scope.scope(&format!("dram.chan{c}")));
            ch.queue_stats()
                .record(&mut scope.scope(&format!("queue.dram.chan{c}")));
        }
        for (b, q) in self.bank_in.iter().enumerate() {
            q.stats()
                .record(&mut scope.scope(&format!("queue.bank_in.bank{b}")));
        }
        self.stats().record(scope);
    }
}

impl<T: TraceSink> sa_telemetry::Inspectable for NodeMemSys<T> {
    fn probe_kind(&self) -> &'static str {
        "node_mem_sys"
    }

    /// The node's snapshot subtree: one child per scatter-add unit, cache
    /// bank, and DRAM channel (same `sa.unitN`/`cache.bankN`/`dram.chanN`
    /// naming as [`NodeMemSys::record_metrics`]), plus bank-input queue
    /// depths and the undrained completion count.
    fn probe_json(&self) -> sa_telemetry::Json {
        use sa_telemetry::{Json, ProbeRegistry};
        let mut o = Json::obj();
        o.push("node", Json::UInt(self.node as u64));
        o.push("completions", Json::UInt(self.completions.len() as u64));
        let bank_in: usize = self.bank_in.iter().map(BoundedQueue::len).sum();
        o.push("bank_in", Json::UInt(bank_in as u64));
        let mut children = ProbeRegistry::new();
        for (b, u) in self.sa.iter().enumerate() {
            children.register(&format!("sa.unit{b}"), u);
        }
        for (b, bank) in self.banks.iter().enumerate() {
            children.register(&format!("cache.bank{b}"), bank);
        }
        for (c, ch) in self.channels.iter().enumerate() {
            children.register(&format!("dram.chan{c}"), ch);
        }
        o.push("components", children.into_components());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sim::{ScalarKind, ScatterOp};

    fn sa_req(id: u64, word: u64, val: i64) -> MemRequest {
        MemRequest {
            id,
            addr: Addr::from_word_index(word),
            op: MemOp::Scatter {
                bits: val as u64,
                kind: ScalarKind::I64,
                op: ScatterOp::Add,
                fetch: false,
            },
            origin: Origin::AddrGen { node: 0, ag: 0 },
        }
    }

    fn run_until_idle(
        node: &mut NodeMemSys,
        start: Cycle,
        limit: u64,
    ) -> (Vec<MemResponse>, Cycle) {
        let mut now = start;
        let mut done = Vec::new();
        for _ in 0..limit {
            now += 1;
            node.tick(now);
            while let Some(c) = node.pop_completion() {
                done.push(c);
            }
            if node.is_idle() {
                return (done, now);
            }
        }
        panic!("node did not drain in {limit} cycles");
    }

    #[test]
    fn scatter_adds_land_in_memory() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        // 16 adds spread over 4 words.
        let mut id = 0;
        let mut now = Cycle(0);
        let mut pending: VecDeque<MemRequest> = (0..16)
            .map(|i| {
                id += 1;
                sa_req(id, i % 4, 1)
            })
            .collect();
        let mut completions = Vec::new();
        for _ in 0..100_000 {
            now += 1;
            while let Some(req) = pending.pop_front() {
                if let Err(req) = node.inject(req) {
                    pending.push_front(req);
                    break;
                }
            }
            node.tick(now);
            while let Some(c) = node.pop_completion() {
                completions.push(c);
            }
            if pending.is_empty() && node.is_idle() {
                break;
            }
        }
        assert!(node.is_idle(), "node drained");
        assert_eq!(completions.len(), 16, "one ack per scatter request");
        node.flush_to_store();
        assert_eq!(
            node.store().extract_i64(Addr(0), 4),
            vec![4, 4, 4, 4],
            "all additions applied atomically"
        );
    }

    #[test]
    fn reads_and_writes_bypass_the_unit() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        node.store_mut().write_i64(Addr::from_word_index(3), 42);
        node.inject(MemRequest {
            id: 1,
            addr: Addr::from_word_index(3),
            op: MemOp::Read,
            origin: Origin::AddrGen { node: 0, ag: 0 },
        })
        .unwrap();
        node.inject(MemRequest {
            id: 2,
            addr: Addr::from_word_index(100),
            op: MemOp::Write { bits: 7 },
            origin: Origin::AddrGen { node: 0, ag: 0 },
        })
        .unwrap();
        let (done, _) = run_until_idle(&mut node, Cycle(0), 100_000);
        assert_eq!(done.len(), 2);
        let read = done.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(read.bits as i64, 42);
        assert_eq!(node.store().read_word(Addr::from_word_index(100)), 7);
        let s = node.stats();
        assert_eq!(s.sa.accepted, 0, "no scatter traffic touched the unit");
    }

    #[test]
    fn mixed_traffic_preserves_order_sensitive_results() {
        // Scatter-adds followed by a read of the same word: the read is
        // issued only after completions confirm the adds are done.
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        for i in 0..8 {
            node.inject(sa_req(i, 0, 1)).unwrap();
        }
        let (done, now) = run_until_idle(&mut node, Cycle(0), 100_000);
        assert_eq!(done.len(), 8);
        node.inject(MemRequest {
            id: 100,
            addr: Addr::from_word_index(0),
            op: MemOp::Read,
            origin: Origin::AddrGen { node: 0, ag: 0 },
        })
        .unwrap();
        let (done, _) = run_until_idle(&mut node, now, 100_000);
        assert_eq!(done[0].bits as i64, 8);
    }

    #[test]
    fn hot_word_serializes_but_stays_correct() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        let n = 64;
        let mut pending: VecDeque<MemRequest> = (0..n).map(|i| sa_req(i, 7, 1)).collect();
        let mut now = Cycle(0);
        let mut acked = 0;
        for _ in 0..1_000_000 {
            now += 1;
            while let Some(req) = pending.pop_front() {
                if let Err(req) = node.inject(req) {
                    pending.push_front(req);
                    break;
                }
            }
            node.tick(now);
            while node.pop_completion().is_some() {
                acked += 1;
            }
            if pending.is_empty() && node.is_idle() {
                break;
            }
        }
        assert_eq!(acked, n);
        node.flush_to_store();
        assert_eq!(node.store().read_i64(Addr::from_word_index(7)), n as i64);
        let s = node.stats();
        assert_eq!(s.sa.reads_issued + s.sa.chained, n, "one read, n-1 chains");
        assert!(
            s.sa.reads_issued < 5,
            "combining suppressed nearly all reads"
        );
    }

    #[test]
    fn combining_mode_zero_allocates_and_sums_back() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, true);
        for i in 0..8 {
            node.inject(sa_req(i, i % 2, 1)).unwrap();
        }
        let (_, _) = run_until_idle(&mut node, Cycle(0), 100_000);
        // In combining mode nothing reaches DRAM; the sums sit in the cache
        // as partial lines.
        assert_eq!(node.stats().dram.reads, 0, "zero-alloc avoids fills");
        let sums = node.flush_sum_backs();
        assert_eq!(sums.len(), 1, "both words share one line");
        assert_eq!(sums[0].data[0], 4);
        assert_eq!(sums[0].data[1], 4);
    }

    #[test]
    fn throughput_scales_with_banks() {
        // Uniform random-ish addresses across many lines: 8 banks must beat
        // a single hot bank by a wide margin.
        let cfg = MachineConfig::merrimac();
        let line_words = cfg.cache.words_per_line();
        // Word addresses that all land in bank 0 (hot) vs consecutive lines
        // (spread over all banks).
        let hot_words: Vec<u64> = (0..)
            .filter(|l| cfg.cache.bank_of_line(*l) == 0)
            .take(16)
            .map(|l| l * line_words)
            .collect();
        let spread_words: Vec<u64> = (0..16u64).map(|l| l * line_words).collect();
        let run = |words: &[u64]| {
            let mut node = NodeMemSys::new(cfg, 0, false);
            let n = 256u64;
            let mut pending: VecDeque<MemRequest> = (0..n)
                .map(|i| sa_req(i, words[(i % 16) as usize], 1))
                .collect();
            let mut now = Cycle(0);
            loop {
                now += 1;
                while let Some(req) = pending.pop_front() {
                    if let Err(req) = node.inject(req) {
                        pending.push_front(req);
                        break;
                    }
                }
                node.tick(now);
                while node.pop_completion().is_some() {}
                if pending.is_empty() && node.is_idle() {
                    return now.raw();
                }
            }
        };
        let spread = run(&spread_words);
        let hot = run(&hot_words);
        assert!(
            hot > spread * 3,
            "hot bank ({hot} cycles) should be much slower than spread ({spread} cycles)"
        );
    }

    #[test]
    #[should_panic(expected = "additive identity")]
    fn combining_rejects_non_add() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, true);
        let req = MemRequest {
            id: 1,
            addr: Addr(0),
            op: MemOp::Scatter {
                bits: 0,
                kind: ScalarKind::I64,
                op: ScatterOp::Max,
                fetch: false,
            },
            origin: Origin::AddrGen { node: 0, ag: 0 },
        };
        let _ = node.inject(req);
    }

    #[test]
    fn back_pressure_rejects_when_bank_queue_full() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        // All to one bank (same line), never ticking.
        let mut rejected = false;
        for i in 0..100 {
            if node.inject(sa_req(i, 0, 1)).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "bank input queue must be bounded");
    }

    #[test]
    fn request_lifecycle_traced_end_to_end() {
        let mut cfg = MachineConfig::merrimac();
        cfg.req_sample = 1;
        let mut node = NodeMemSys::new(cfg, 0, false);
        let mut pending: VecDeque<MemRequest> = (0..32).map(|i| sa_req(i, i % 8, 1)).collect();
        let mut now = Cycle(0);
        for _ in 0..100_000 {
            now += 1;
            while let Some(req) = pending.pop_front() {
                if let Err(req) = node.inject_traced(req, now) {
                    pending.push_front(req);
                    break;
                }
            }
            node.tick(now);
            while node.pop_completion().is_some() {}
            if pending.is_empty() && node.is_idle() {
                break;
            }
        }
        assert!(node.is_idle());
        let t = node.req_tracer();
        assert_eq!(t.retired_len(), 32, "every sampled request retired");
        assert_eq!(t.live_len(), 0, "nothing left in flight");
        for rec in t.retired_records() {
            assert_eq!(rec.stamps.first().map(|&(s, _)| s), Some(ReqStage::Issued));
            assert!(rec.is_retired());
            assert!(
                rec.stamps.windows(2).all(|w| w[0].1 <= w[1].1),
                "stage timestamps monotone for request {}: {:?}",
                rec.id,
                rec.stamps
            );
            assert!(
                rec.stamp_at(ReqStage::CombStore).is_some(),
                "scatter request {} passed through the combining store",
                rec.id
            );
        }
        // Chain heads reach DRAM via their current-value read; at least one
        // request per hot word must carry a Dram stamp.
        assert!(
            t.retired_records()
                .any(|r| r.stamp_at(ReqStage::Dram).is_some()),
            "demand fills attributed to originating requests"
        );
    }

    #[test]
    fn untraced_node_records_nothing() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        let mut now = Cycle(0);
        for i in 0..8 {
            node.inject_traced(sa_req(i, i, 1), now).unwrap();
        }
        let mut pending: VecDeque<MemRequest> = VecDeque::new();
        for _ in 0..100_000 {
            now += 1;
            while let Some(req) = pending.pop_front() {
                if let Err(req) = node.inject_traced(req, now) {
                    pending.push_front(req);
                    break;
                }
            }
            node.tick(now);
            while node.pop_completion().is_some() {}
            if node.is_idle() {
                break;
            }
        }
        assert_eq!(node.req_tracer().issued_len(), 0);
    }

    #[test]
    fn recoverable_faults_leave_results_bit_identical() {
        // ECC faults on DRAM reads plus combining-store stalls: the run gets
        // slower and the resilience counters move, but every architectural
        // result (memory image, completion count) matches the clean run.
        let plan = FaultPlan::parse(
            r#"{"schema":"sa-faultplan","version":1,"seed":33,"cs_timeout":32,
                "faults":[{"kind":"ecc_single","period":3},
                          {"kind":"ecc_double","period":4},
                          {"kind":"cs_stall","cycles":20,"period":2}]}"#,
        )
        .expect("valid plan");
        let run = |plan: Option<&FaultPlan>| {
            let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
            if let Some(p) = plan {
                node.set_fault_plan(p);
            }
            let mut pending: VecDeque<MemRequest> = (0..96)
                .map(|i| sa_req(i, i % 24, 1 + (i as i64 % 5)))
                .collect();
            let mut now = Cycle(0);
            let mut acked = 0u64;
            for _ in 0..1_000_000 {
                now += 1;
                while let Some(req) = pending.pop_front() {
                    if let Err(req) = node.inject(req) {
                        pending.push_front(req);
                        break;
                    }
                }
                node.tick(now);
                while node.pop_completion().is_some() {
                    acked += 1;
                }
                if pending.is_empty() && node.is_idle() {
                    break;
                }
            }
            assert!(node.is_idle(), "node drained");
            node.flush_to_store();
            let image = node.store().extract_i64(Addr(0), 24);
            (image, acked, now.raw(), node.stats())
        };
        let (image_clean, acked_clean, t_clean, stats_clean) = run(None);
        let (image_fault, acked_fault, t_fault, stats_fault) = run(Some(&plan));
        assert!(stats_clean.resilience.is_zero());
        let res = stats_fault.resilience;
        assert!(res.ecc_corrected > 0, "single-bit faults fired: {res:?}");
        assert!(res.ecc_detected > 0, "double-bit faults fired: {res:?}");
        assert!(
            res.mshr_replays > 0,
            "poisoned fills were replayed: {res:?}"
        );
        assert!(res.cs_stalls > 0, "combining-store stalls fired: {res:?}");
        assert_eq!(image_clean, image_fault, "results must be bit-identical");
        assert_eq!(acked_clean, acked_fault);
        assert!(
            t_fault > t_clean,
            "faulty run ({t_fault}) must be slower than clean ({t_clean})"
        );
    }

    #[test]
    fn stats_aggregate_across_banks() {
        let mut node = NodeMemSys::new(MachineConfig::merrimac(), 0, false);
        for i in 0..32 {
            node.inject(sa_req(i, i, 1)).unwrap();
        }
        let (_, _) = run_until_idle(&mut node, Cycle(0), 100_000);
        let s = node.stats();
        assert_eq!(s.sa.accepted, 32);
        assert_eq!(s.sa.writes_issued, 32);
        assert!(s.dram.reads > 0);
    }
}
