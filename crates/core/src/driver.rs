//! A minimal driver that runs one scatter kernel on a [`NodeMemSys`].
//!
//! The full stream-program executor (gather → kernel → scatter pipelines,
//! address generators, compute overlap) lives in the `sa-proc` crate; this
//! driver issues a bare scatter-add stream at address-generator bandwidth
//! and measures its completion, which is exactly what the scatter-add-only
//! experiments (§4.4, §4.5) need, and what unit/property tests use to check
//! atomicity end to end.

use std::collections::VecDeque;
use std::fmt;

use sa_sim::{Addr, Clock, Cycle, MachineConfig, MemOp, MemRequest, Origin, ScalarKind, ScatterOp};
use sa_telemetry::{Introspect, Json, NullTrace, ProbeRegistry, TraceSink};

use crate::node::{NodeMemSys, NodeStats};

/// A data-parallel scatter operation: `a[b[i]] ∘= c[i]` for all `i`
/// (the paper's `scatterAdd(a, b, c)` with `a` starting at `base_word`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScatterKernel {
    /// First word index of the target array `a`.
    pub base_word: u64,
    /// The index array `b` (word offsets into `a`).
    pub indices: Vec<u64>,
    /// The value array `c` as raw bits; must be the same length as
    /// `indices`.
    pub values: Vec<u64>,
    /// Interpretation of the words.
    pub kind: ScalarKind,
    /// Reduction to apply (the paper's scatter-add is [`ScatterOp::Add`]).
    pub op: ScatterOp,
}

impl ScatterKernel {
    /// A histogram kernel: every index contributes `+1` (integer).
    pub fn histogram(base_word: u64, indices: Vec<u64>) -> ScatterKernel {
        let n = indices.len();
        ScatterKernel {
            base_word,
            indices,
            values: vec![1u64; n],
            kind: ScalarKind::I64,
            op: ScatterOp::Add,
        }
    }

    /// A floating-point accumulation kernel (superposition): `a[b[i]] += c[i]`.
    pub fn superposition(base_word: u64, indices: Vec<u64>, values: &[f64]) -> ScatterKernel {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        ScatterKernel {
            base_word,
            indices,
            values: values.iter().map(|v| v.to_bits()).collect(),
            kind: ScalarKind::F64,
            op: ScatterOp::Add,
        }
    }
}

/// Where a contended run lost cycles, as stall *events* normalized by run
/// length. Event counters are a proxy for blocked cycles: each rejected
/// attempt costs the rejecting requester (at least) one retry cycle.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles the run took (the normalization base).
    pub cycles: u64,
    /// Cache-bank rejections because the MSHR file or an MSHR's target list
    /// was full.
    pub mshr_full: u64,
    /// Bank input-queue rejections (hot-bank conflicts back-pressuring the
    /// address generators).
    pub bank_conflict: u64,
    /// Scatter-add submissions rejected because the combining store was full.
    pub cs_full: u64,
    /// Network ejection-port stalls (zero on a single node).
    pub net_credit: u64,
}

impl StallBreakdown {
    /// Derive the breakdown from a node's aggregated statistics.
    pub fn from_stats(stats: &NodeStats, cycles: u64) -> StallBreakdown {
        StallBreakdown {
            cycles,
            mshr_full: stats.cache.mshr_full,
            bank_conflict: stats.bank_in.rejected,
            cs_full: stats.sa.stalled_full,
            net_credit: 0,
        }
    }

    /// Add network-credit stalls (multi-node runs).
    pub fn with_net_credit(mut self, net_credit: u64) -> StallBreakdown {
        self.net_credit = net_credit;
        self
    }

    /// `events` as a percentage of run cycles, capped at 100.
    pub fn pct(&self, events: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (events as f64 * 100.0 / self.cycles as f64).min(100.0)
        }
    }

    /// Event count for a canonical stall-cause key from
    /// [`sa_telemetry::STALL_CAUSES`].
    ///
    /// # Panics
    ///
    /// Panics on a key outside the canonical table (programming error).
    pub fn events_for(&self, key: &str) -> u64 {
        match key {
            "mshr_full" => self.mshr_full,
            "bank_conflict" => self.bank_conflict,
            "cs_full" => self.cs_full,
            "net_credit" => self.net_credit,
            other => panic!("unknown stall cause key {other:?}"),
        }
    }

    /// As the `attribution.<kernel>` object of a v2 stats document:
    /// `{"cycles": N, "<cause>": {"events": E, "pct": P}, ...}`, causes in
    /// [`sa_telemetry::STALL_CAUSES`] order.
    pub fn to_json(&self) -> sa_telemetry::Json {
        use sa_telemetry::Json;
        let mut o = Json::obj();
        o.push("cycles", Json::UInt(self.cycles));
        for cause in &sa_telemetry::STALL_CAUSES {
            let events = self.events_for(cause.key);
            let mut e = Json::obj();
            e.push("events", Json::UInt(events));
            e.push("pct", Json::Num(self.pct(events)));
            o.push(cause.key, e);
        }
        o
    }
}

impl fmt::Display for StallBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stall breakdown over {} cycles:", self.cycles)?;
        let mut causes = sa_telemetry::STALL_CAUSES.iter().peekable();
        while let Some(cause) = causes.next() {
            let events = self.events_for(cause.key);
            write!(
                f,
                "  {:<22}{:>6.1}%  ({} events)",
                format!("{}:", cause.label),
                self.pct(events),
                events
            )?;
            if causes.peek().is_some() {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Outcome of [`drive_scatter`].
#[derive(Debug)]
pub struct RunResult<T: TraceSink = NullTrace> {
    /// Cycles until the last scatter request was acknowledged by a
    /// scatter-add unit (the paper's completion point — the processor may
    /// proceed once all acks arrive).
    pub cycles: u64,
    /// Cycles until every final sum reached memory (drain time).
    pub drain_cycles: u64,
    /// Cycles the run loop fast-forwarded over instead of ticking (0 with
    /// fast-forward off; wall-clock accounting only — every other field is
    /// byte-identical either way).
    pub skipped_cycles: u64,
    /// Aggregated machine statistics.
    pub stats: NodeStats,
    /// Old values returned by fetch-ops, in completion order
    /// (empty unless `fetch` was set).
    pub fetched: Vec<(u64, u64)>,
    /// The node, for inspecting the final memory image.
    pub node: NodeMemSys<T>,
    /// Base word of the result array (copied from the kernel).
    pub base_word: u64,
}

impl<T: TraceSink> RunResult<T> {
    /// Where this run's cycles went (stall attribution).
    pub fn stall_breakdown(&self) -> StallBreakdown {
        StallBreakdown::from_stats(&self.stats, self.drain_cycles)
    }

    /// Print the stall-breakdown summary to stdout.
    pub fn print_stall_summary(&self) {
        println!("{}", self.stall_breakdown());
    }
}

impl<T: TraceSink> RunResult<T> {
    /// The result array as `n` integers.
    pub fn result_i64(&self, n: usize) -> Vec<i64> {
        self.node
            .store()
            .extract_i64(Addr::from_word_index(self.base_word), n)
    }

    /// The result array as `n` doubles.
    pub fn result_f64(&self, n: usize) -> Vec<f64> {
        self.node
            .store()
            .extract_f64(Addr::from_word_index(self.base_word), n)
    }

    /// Execution time in microseconds at 1 GHz.
    pub fn micros(&self) -> f64 {
        Cycle(self.cycles).as_micros(1.0)
    }
}

/// Sequential reference semantics of a [`ScatterKernel`] — what a scalar
/// loop would compute. Hardware reordering must produce the same integer
/// results and, for floating point, the same value up to reassociation.
pub fn scatter_reference(kernel: &ScatterKernel, result_len: usize) -> Vec<u64> {
    let mut out = vec![0u64; result_len];
    for (i, &idx) in kernel.indices.iter().enumerate() {
        let slot = &mut out[idx as usize];
        *slot = sa_sim::combine(*slot, kernel.values[i], kernel.kind, kernel.op);
    }
    out
}

/// Run `kernel` on a fresh [`NodeMemSys`] with configuration `cfg`,
/// issuing requests at full address-generator bandwidth
/// (`ag.count × ag.width` per cycle), and measure completion.
///
/// With `fetch` set, every request is a fetch-op and the pre-op values are
/// collected in [`RunResult::fetched`] (the §3.3 extension).
///
/// # Panics
///
/// Panics if `indices` and `values` lengths differ.
pub fn drive_scatter(cfg: &MachineConfig, kernel: &ScatterKernel, fetch: bool) -> RunResult {
    drive_scatter_with(NodeMemSys::new(*cfg, 0, false), kernel, fetch)
}

/// [`drive_scatter`] over a caller-built node — the entry point for traced
/// runs (`NodeMemSys::with_tracer`) or custom sampling intervals.
///
/// # Panics
///
/// Panics if `indices` and `values` lengths differ.
pub fn drive_scatter_with<T: TraceSink>(
    node: NodeMemSys<T>,
    kernel: &ScatterKernel,
    fetch: bool,
) -> RunResult<T> {
    drive_scatter_probed(node, kernel, fetch, &mut Introspect::off())
}

/// [`drive_scatter_with`] with live introspection attached: probe snapshots
/// at the recorder's cadence (the event-horizon skip is clamped so due
/// cycles are always ticked — snapshot bytes are identical with
/// fast-forward on or off), wall-clock-throttled progress heartbeats, and
/// host-time attribution of the inject/tick/drain/skip phases. With
/// [`Introspect::off`] (what [`drive_scatter_with`] passes) every
/// introspection site reduces to one branch.
///
/// # Panics
///
/// Panics if `indices` and `values` lengths differ.
pub fn drive_scatter_probed<T: TraceSink>(
    mut node: NodeMemSys<T>,
    kernel: &ScatterKernel,
    fetch: bool,
    probe: &mut Introspect,
) -> RunResult<T> {
    assert_eq!(
        kernel.indices.len(),
        kernel.values.len(),
        "index/value length mismatch"
    );
    let cfg = *node.config();
    let mut clock = Clock::with_limit(4_000_000_000);
    let n = kernel.indices.len();
    let issue_per_cycle = (cfg.ag.count as u32 * cfg.ag.width) as usize;

    let mut pending: VecDeque<MemRequest> = kernel
        .indices
        .iter()
        .zip(&kernel.values)
        .enumerate()
        .map(|(i, (&idx, &bits))| MemRequest {
            id: i as u64,
            addr: Addr::from_word_index(kernel.base_word + idx),
            op: MemOp::Scatter {
                bits,
                kind: kernel.kind,
                op: kernel.op,
                fetch,
            },
            origin: Origin::AddrGen {
                node: 0,
                ag: i % cfg.ag.count,
            },
        })
        .collect();

    let mut acked = 0usize;
    let mut fetched = Vec::new();
    let mut ack_time = 0u64;
    let mut skipped_cycles = 0u64;
    let fast_forward = node.fast_forward();

    loop {
        let now = clock.advance();
        probe.profiler.time("inject", || {
            let mut issued = 0;
            while issued < issue_per_cycle {
                let Some(req) = pending.pop_front() else {
                    break;
                };
                match node.inject_traced(req, now) {
                    Ok(()) => issued += 1,
                    Err(req) => {
                        pending.push_front(req);
                        break;
                    }
                }
            }
        });
        probe.profiler.time("tick", || node.tick(now));
        probe.profiler.time("drain", || {
            while let Some(c) = node.pop_completion() {
                acked += 1;
                if fetch {
                    fetched.push((c.id, c.bits));
                }
                if acked == n {
                    // The completion's own cycle, not the clock: under epoch
                    // lookahead a batch of completions can drain at a later
                    // clock cycle than it was produced. Identical serially
                    // (completions drain the cycle they are produced).
                    ack_time = c.at.raw();
                }
            }
        });
        if probe.recorder.due(now.raw()) {
            let mut reg = ProbeRegistry::new();
            reg.register("node0", &node);
            probe.recorder.record(reg, now.raw(), skipped_cycles);
        }
        if probe.progress.is_on() && now.raw() & 0x3FFF == 0 {
            let elapsed = probe.progress.elapsed().as_secs_f64();
            probe.progress.heartbeat(|o| {
                o.push("cycle", Json::UInt(now.raw()));
                o.push("acked", Json::UInt(acked as u64));
                o.push("total", Json::UInt(n as u64));
                o.push("skipped_cycles", Json::UInt(skipped_cycles));
                let rate = if elapsed > 0.0 {
                    now.raw() as f64 / elapsed
                } else {
                    0.0
                };
                o.push("sim_cycles_per_sec", Json::Num(rate));
                let ff = if now.raw() > 0 {
                    skipped_cycles as f64 / now.raw() as f64
                } else {
                    0.0
                };
                o.push("ff_ratio", Json::Num(ff));
            });
        }
        if pending.is_empty() && node.is_idle() {
            break;
        }
        // Event-horizon fast-forward: once everything is issued, jump to the
        // cycle before the node's next event. While requests are still
        // pending, every cycle retries injection (mutating queue-rejection
        // counters), so the loop must tick through those cycles. The horizon
        // is clamped to the next due probe cycle so snapshot cadence sees
        // every due cycle ticked regardless of skipping.
        if fast_forward && pending.is_empty() {
            // With intra-node threads, try batching a whole epoch first:
            // the lanes free-run independently up to (but never across) the
            // next due probe cycle. Falls back to the classic event-horizon
            // skip (returns 0) whenever an epoch cannot engage.
            let cap = match probe.recorder.next_due() {
                Some(due) => due.saturating_sub(1),
                None => u64::MAX,
            };
            let adv = probe.profiler.time("skip", || node.advance_epoch(now, cap));
            if adv > 0 {
                clock.skip_to(Cycle(now.raw() + adv - 1));
                skipped_cycles += adv - 1;
            } else if let Some(mut h) = node.next_event(now) {
                if let Some(due) = probe.recorder.next_due() {
                    h = h.min(Cycle(due.max(now.raw() + 1)));
                }
                if h > now + 1 {
                    let k = h.raw() - now.raw() - 1;
                    probe.profiler.time("skip", || {
                        node.skip_cycles(now, k);
                    });
                    clock.skip_to(Cycle(h.raw() - 1));
                    skipped_cycles += k;
                }
            }
        }
    }

    // Materialize the coherent memory image for result extraction.
    node.flush_to_store();

    let startup = u64::from(cfg.ag.startup_cycles);
    RunResult {
        cycles: ack_time + startup,
        drain_cycles: clock.now().raw() + startup,
        skipped_cycles,
        stats: node.stats(),
        fetched,
        base_word: kernel.base_word,
        node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merrimac() -> MachineConfig {
        MachineConfig::merrimac()
    }

    #[test]
    fn histogram_matches_reference() {
        let mut rng = sa_sim::Rng64::new(42);
        let indices: Vec<u64> = (0..500).map(|_| rng.below(128)).collect();
        let kernel = ScatterKernel::histogram(0, indices);
        let run = drive_scatter(&merrimac(), &kernel, false);
        let reference = scatter_reference(&kernel, 128);
        let got = run.result_i64(128);
        let expect: Vec<i64> = reference.iter().map(|&b| b as i64).collect();
        assert_eq!(got, expect);
        assert!(run.cycles > 0 && run.drain_cycles >= run.cycles);
    }

    #[test]
    fn superposition_f64_sums_match_to_reassociation() {
        let mut rng = sa_sim::Rng64::new(7);
        let n = 300;
        let indices: Vec<u64> = (0..n).map(|_| rng.below(32)).collect();
        let values: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let kernel = ScatterKernel::superposition(64, indices, &values);
        let run = drive_scatter(&merrimac(), &kernel, false);
        let got = run.result_f64(32);
        let reference: Vec<f64> = scatter_reference(&kernel, 32)
            .iter()
            .map(|&b| f64::from_bits(b))
            .collect();
        for (g, r) in got.iter().zip(&reference) {
            assert!(
                (g - r).abs() < 1e-9 * (1.0 + r.abs()),
                "reordered sum {g} deviates from reference {r}"
            );
        }
    }

    #[test]
    fn fetch_mode_returns_unique_slots() {
        // Parallel queue allocation: fetch-add of 1 on one counter hands out
        // distinct, dense slot numbers.
        let kernel = ScatterKernel {
            base_word: 0,
            indices: vec![0; 40],
            values: vec![1; 40],
            kind: ScalarKind::I64,
            op: ScatterOp::Add,
        };
        let run = drive_scatter(&merrimac(), &kernel, true);
        let mut slots: Vec<i64> = run.fetched.iter().map(|&(_, b)| b as i64).collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..40).collect::<Vec<i64>>());
        assert_eq!(run.result_i64(1), vec![40]);
    }

    #[test]
    fn narrow_range_is_slower_than_wide_range() {
        // The Figure 7 hot-bank/serialization effect at small index ranges.
        let mut rng = sa_sim::Rng64::new(3);
        let n = 2048;
        let narrow: Vec<u64> = (0..n).map(|_| rng.below(2)).collect();
        let wide: Vec<u64> = (0..n).map(|_| rng.below(4096)).collect();
        let run_n = drive_scatter(&merrimac(), &ScatterKernel::histogram(0, narrow), false);
        let run_w = drive_scatter(&merrimac(), &ScatterKernel::histogram(0, wide), false);
        assert!(
            run_n.cycles > 2 * run_w.cycles,
            "2 bins ({}) must be slower than 4096 bins ({})",
            run_n.cycles,
            run_w.cycles
        );
    }

    #[test]
    fn deterministic_across_runs() {
        // §3.3: the hardware ordering "is consistent in the hardware and
        // repeatable for each run of the program".
        let mut rng = sa_sim::Rng64::new(9);
        let indices: Vec<u64> = (0..256).map(|_| rng.below(64)).collect();
        let kernel = ScatterKernel::histogram(0, indices);
        let a = drive_scatter(&merrimac(), &kernel, false);
        let b = drive_scatter(&merrimac(), &kernel, false);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.result_i64(64), b.result_i64(64));
    }

    #[test]
    fn fast_forward_is_byte_identical() {
        let mut rng = sa_sim::Rng64::new(11);
        let indices: Vec<u64> = (0..2048).map(|_| rng.below(4096)).collect();
        let kernel = ScatterKernel::histogram(0, indices);
        let mut on = NodeMemSys::new(merrimac(), 0, false);
        on.set_fast_forward(true);
        let mut off = NodeMemSys::new(merrimac(), 0, false);
        off.set_fast_forward(false);
        let a = drive_scatter_with(on, &kernel, false);
        let b = drive_scatter_with(off, &kernel, false);
        assert_eq!(b.skipped_cycles, 0, "ff off must tick every cycle");
        assert!(a.skipped_cycles > 0, "drain phase should fast-forward");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.drain_cycles, b.drain_cycles);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.result_i64(4096), b.result_i64(4096));
    }

    #[test]
    fn contended_kernel_shows_stalls() {
        // Every add targets the same two words: one hot bank, so the bank
        // input queue rejects injections and the combining store backs up.
        let indices: Vec<u64> = (0..2048).map(|i| i % 2).collect();
        let kernel = ScatterKernel::histogram(0, indices);
        let run = drive_scatter(&merrimac(), &kernel, false);
        let sb = run.stall_breakdown();
        assert_eq!(sb.cycles, run.drain_cycles);
        assert!(
            sb.bank_conflict > 0,
            "hot-bank kernel must reject injections: {sb:?}"
        );
        assert!(
            sb.bank_conflict + sb.cs_full + sb.mshr_full > sb.cycles / 10,
            "a contended run should be visibly stalled: {sb:?}"
        );
        assert_eq!(sb.net_credit, 0, "single node has no network stalls");
        let text = sb.to_string();
        for needle in [
            "stall breakdown",
            "MSHR full",
            "bank conflict",
            "combining-store full",
            "network credit",
        ] {
            assert!(text.contains(needle), "summary missing '{needle}':\n{text}");
        }
        // An uncontended spread kernel stalls far less on bank conflicts.
        let spread: Vec<u64> = (0..2048u64).map(|i| (i * 97) % 4096).collect();
        let calm = drive_scatter(&merrimac(), &ScatterKernel::histogram(0, spread), false);
        let calm_sb = calm.stall_breakdown();
        assert!(
            calm_sb.pct(calm_sb.bank_conflict) < sb.pct(sb.bank_conflict),
            "spread kernel ({calm_sb:?}) should stall less than hot kernel ({sb:?})"
        );
    }

    #[test]
    fn traced_run_samples_series_and_tracks() {
        use sa_telemetry::{ChromeTrace, Json};
        let indices: Vec<u64> = (0..1024u64).map(|i| (i * 13) % 512).collect();
        let kernel = ScatterKernel::histogram(0, indices);
        let node = NodeMemSys::with_tracer(merrimac(), 0, false, ChromeTrace::new());
        let run = drive_scatter_with(node, &kernel, false);
        let series = run.node.series();
        assert!(!series.is_empty(), "sampling must produce series");
        assert!(series.iter().any(|(n, _)| n.contains("sa.cs_residency")));
        assert!(series.iter().any(|(n, _)| n.contains("dram.bus_util")));
        let trace = run.node.tracer();
        assert!(trace.event_count() > 0);
        let doc = Json::parse(&trace.to_json_string()).expect("valid trace JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let tracks: std::collections::BTreeSet<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        let cfg = merrimac();
        let bank_tracks = tracks.iter().filter(|t| t.contains(".cache.bank")).count();
        let chan_tracks = tracks.iter().filter(|t| t.contains(".dram.chan")).count();
        assert_eq!(bank_tracks, cfg.cache.banks, "one track per cache bank");
        assert_eq!(chan_tracks, cfg.dram.channels, "one track per DRAM channel");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let kernel = ScatterKernel {
            base_word: 0,
            indices: vec![0, 1],
            values: vec![1],
            kind: ScalarKind::I64,
            op: ScatterOp::Add,
        };
        let _ = drive_scatter(&merrimac(), &kernel, false);
    }
}
