//! System-wide synchronization primitives built on the fetch-and-add
//! extension — the second §5 future-work item: "implement system wide
//! synchronization primitives for SIMD architectures".
//!
//! The NYU Ultracomputer (cited by the paper as the origin of
//! fetch-and-add) showed that one atomic counter suffices for the classic
//! coordination primitives. With the §3.3 data-parallel fetch-and-add these
//! cost a *single* stream operation:
//!
//! * [`simulate_barrier`] — every participant fetch-adds 1 to an arrival
//!   counter; the counter reaching the participant count *is* the barrier.
//! * [`allocate_slots`] — parallel queue allocation: `n` lanes fetch-add 1
//!   on a tail pointer and receive dense, unique slot indices.

use sa_sim::{MachineConfig, ScalarKind, ScatterOp};

use crate::driver::{drive_scatter, ScatterKernel};
use crate::node::NodeStats;

/// Outcome of a simulated barrier.
#[derive(Debug)]
pub struct BarrierResult {
    /// Cycles until the last participant's arrival was acknowledged (the
    /// point at which the counter shows full arrival).
    pub cycles: u64,
    /// Arrival order observed by the counter (old values 0..P-1, one per
    /// participant, in completion order).
    pub arrival_order: Vec<u64>,
    /// Machine statistics.
    pub stats: NodeStats,
}

/// Simulate `participants` SIMD lanes arriving at a barrier: one
/// fetch-and-add each on a shared arrival counter at `counter_word`.
///
/// # Panics
///
/// Panics if `participants` is zero.
pub fn simulate_barrier(
    cfg: &MachineConfig,
    counter_word: u64,
    participants: usize,
) -> BarrierResult {
    assert!(participants > 0, "a barrier needs participants");
    let kernel = ScatterKernel {
        base_word: counter_word,
        indices: vec![0; participants],
        values: vec![1; participants],
        kind: ScalarKind::I64,
        op: ScatterOp::Add,
    };
    let run = drive_scatter(cfg, &kernel, true);
    let arrival_order = run.fetched.iter().map(|&(_, old)| old).collect();
    debug_assert_eq!(
        run.result_i64(1)[0] as usize,
        participants,
        "counter shows full arrival"
    );
    BarrierResult {
        cycles: run.cycles,
        arrival_order,
        stats: run.stats,
    }
}

/// Outcome of a parallel queue allocation.
#[derive(Debug)]
pub struct SlotAllocation {
    /// Cycles until every lane held its slot.
    pub cycles: u64,
    /// The slot handed to each request, indexed by request id (dense and
    /// unique by construction of the chained fetch-and-add).
    pub slots: Vec<u64>,
}

/// Allocate `n` dense queue slots in parallel: each lane fetch-adds 1 on the
/// tail pointer at `tail_word` and receives the pre-increment value.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn allocate_slots(cfg: &MachineConfig, tail_word: u64, n: usize) -> SlotAllocation {
    assert!(n > 0, "allocating zero slots is a bug");
    let kernel = ScatterKernel {
        base_word: tail_word,
        indices: vec![0; n],
        values: vec![1; n],
        kind: ScalarKind::I64,
        op: ScatterOp::Add,
    };
    let run = drive_scatter(cfg, &kernel, true);
    let mut slots = vec![0u64; n];
    for &(req, old) in &run.fetched {
        slots[req as usize] = old;
    }
    SlotAllocation {
        cycles: run.cycles,
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::merrimac()
    }

    #[test]
    fn barrier_sees_every_arrival_once() {
        let r = simulate_barrier(&cfg(), 0, 64);
        let mut order = r.arrival_order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..64).collect::<Vec<u64>>());
        assert!(r.cycles > 0);
    }

    #[test]
    fn barrier_cost_scales_with_serial_chain() {
        // All arrivals hit one counter: the chain serializes at FU latency,
        // so doubling participants roughly doubles the barrier time.
        let small = simulate_barrier(&cfg(), 0, 64);
        let large = simulate_barrier(&cfg(), 0, 128);
        let ratio = large.cycles as f64 / small.cycles as f64;
        assert!(
            (1.5..3.0).contains(&ratio),
            "barrier should scale ~linearly in arrivals: {ratio:.2}"
        );
    }

    #[test]
    fn slots_are_dense_and_unique() {
        let a = allocate_slots(&cfg(), 10, 100);
        let mut sorted = a.slots.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn single_participant_degenerates() {
        let r = simulate_barrier(&cfg(), 0, 1);
        assert_eq!(r.arrival_order, vec![0]);
        let a = allocate_slots(&cfg(), 0, 1);
        assert_eq!(a.slots, vec![0]);
    }

    #[test]
    #[should_panic(expected = "needs participants")]
    fn empty_barrier_rejected() {
        let _ = simulate_barrier(&cfg(), 0, 0);
    }
}
