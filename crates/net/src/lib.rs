//! The inter-node network of §4.5: "an input-queued crossbar with
//! back-pressure".
//!
//! Each node has an injection port and an ejection port, both limited to the
//! configured per-node bandwidth (the paper evaluates 1 word/cycle — *low* —
//! and 8 words/cycle — *high*). A message of `w` words therefore occupies its
//! source port for `ceil(w / bw)` cycles, traverses the crossbar with a fixed
//! hop latency, and occupies the destination port for another
//! `ceil(w / bw)` cycles. Delivery queues are bounded; a full queue
//! back-pressures the ejection port, which back-pressures the fabric and
//! eventually the sender.
//!
//! ```
//! use sa_net::{Crossbar, Message};
//! use sa_sim::{Cycle, NetworkConfig};
//!
//! let mut net: Crossbar<&'static str> = Crossbar::new(2, NetworkConfig::high());
//! net.try_inject(Message::new(0, 1, 1, "hello")).unwrap();
//! let mut now = Cycle(0);
//! loop {
//!     now += 1;
//!     net.tick(now);
//!     if let Some(m) = net.pop_delivered(1) {
//!         assert_eq!(m.payload, "hello");
//!         break;
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use sa_faults::{FaultInjector, FaultKind, FaultPlan, FaultSite, ResilienceStats};
use sa_sim::{BoundedQueue, Cycle, NetworkConfig, QueueStats, ReqId};
use sa_telemetry::{OccClass, OccupancyStats, ReqStage, ReqTracer};

/// A message travelling between nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Message<T> {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Payload size in words (data + address overhead as the caller sees
    /// fit); determines port occupancy.
    pub words: u32,
    /// The carried payload.
    pub payload: T,
}

impl<T> Message<T> {
    /// Create a message of `words` words from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new(src: usize, dst: usize, words: u32, payload: T) -> Message<T> {
        assert!(words > 0, "zero-word message");
        Message {
            src,
            dst,
            words,
            payload,
        }
    }
}

/// Counters for the whole fabric.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered.
    pub delivered: u64,
    /// Total words moved.
    pub words: u64,
    /// Sum of source-queue-to-delivery latencies.
    pub total_latency: u64,
    /// Cycles an ejection port was stalled by a full delivery queue.
    pub eject_stalls: u64,
    /// Busy/blocked/idle cycle account for the whole fabric (ports moving
    /// words / messages only in hop-latency flight or undrained deliveries /
    /// empty), with `saturated` counting cycles some injection queue was
    /// full.
    pub occ: OccupancyStats,
}

impl NetStats {
    /// Mean message latency in cycles (0 if nothing was delivered).
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Record these counters into a telemetry scope.
    pub fn record(&self, scope: &mut sa_telemetry::Scope<'_>) {
        scope.counter("delivered", self.delivered);
        scope.counter("words", self.words);
        scope.counter("total_latency", self.total_latency);
        scope.counter("eject_stalls", self.eject_stalls);
        self.occ.record(scope);
        scope.gauge("avg_latency", self.avg_latency());
    }
}

/// Why a send was refused (see [`Crossbar::try_send`]).
#[derive(Debug)]
pub struct SendError<T> {
    /// The message handed back to the caller.
    pub msg: Message<T>,
    /// True when the fabric NACKed an injection it had room for (a fault);
    /// false for ordinary back-pressure (source queue full). NACKed sends
    /// should retry with backoff rather than next cycle.
    pub nack: bool,
}

/// Per-port fault state: the injection NACK schedule and its counters.
/// Travels with the port through [`Crossbar::detach_port`] /
/// [`Crossbar::attach_port`], so the NACK decision stream is port-local and
/// identical under serial and phase-parallel stepping.
#[derive(Debug, Default)]
struct PortFaults {
    inj: FaultInjector,
    stats: ResilienceStats,
}

impl PortFaults {
    /// One injection attempt with queue room = one fault-site event.
    fn nacks(&mut self) -> bool {
        if self.inj.is_active() && self.inj.next() == Some(FaultKind::NetNack) {
            self.stats.net_nacks += 1;
            true
        } else {
            false
        }
    }
}

#[derive(Debug)]
struct PortTx<T> {
    msg: Message<T>,
    entered: Cycle,
    words_left: u32,
}

/// The input-queued crossbar (see crate docs).
#[derive(Debug)]
pub struct Crossbar<T> {
    cfg: NetworkConfig,
    n: usize,
    in_q: Vec<BoundedQueue<(Message<T>, Cycle)>>,
    tx: Vec<Option<PortTx<T>>>,
    flight: VecDeque<(Cycle, Cycle, bool, Message<T>)>, // (arrive_at, entered, resent, msg)
    rx_wait: Vec<VecDeque<(Cycle, Message<T>)>>,
    rx: Vec<Option<PortTx<T>>>,
    out_q: Vec<BoundedQueue<(Message<T>, Cycle)>>,
    stats: NetStats,
    /// Stand-in queues swapped into place while a port is detached,
    /// recycled across detach/attach cycles so phase-parallel stepping does
    /// not allocate per cycle.
    spares: Vec<Option<(PortQueue<T>, PortQueue<T>)>>,
    /// Per-port injection NACK schedules (inert without a fault plan).
    port_faults: Vec<PortFaults>,
    /// Fabric-wide flit-drop schedule, consulted once per flight release
    /// (inert without a fault plan).
    drop_faults: FaultInjector,
    /// Drop/retransmission counters (NACK counters live with the ports).
    resilience: ResilienceStats,
}

type PortQueue<T> = BoundedQueue<(Message<T>, Cycle)>;

impl<T> Crossbar<T> {
    /// A crossbar connecting `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the configured bandwidth is zero.
    pub fn new(n: usize, cfg: NetworkConfig) -> Crossbar<T> {
        assert!(n > 0, "need at least one node");
        assert!(cfg.node_words_per_cycle > 0, "zero network bandwidth");
        let mut net = Crossbar {
            n,
            in_q: (0..n).map(|_| BoundedQueue::new(cfg.queue_depth)).collect(),
            tx: (0..n).map(|_| None).collect(),
            flight: VecDeque::new(),
            rx_wait: (0..n).map(|_| VecDeque::new()).collect(),
            rx: (0..n).map(|_| None).collect(),
            out_q: (0..n).map(|_| BoundedQueue::new(cfg.queue_depth)).collect(),
            stats: NetStats::default(),
            spares: (0..n).map(|_| None).collect(),
            port_faults: (0..n).map(|_| PortFaults::default()).collect(),
            drop_faults: FaultInjector::none(),
            resilience: ResilienceStats::default(),
            cfg,
        };
        if let Some(plan) = sa_faults::default_plan() {
            net.set_fault_plan(&plan);
        }
        net
    }

    /// Install the network faults from `plan`: one injection-NACK schedule
    /// per port (keyed by port index, so decisions are port-local and
    /// independent of stepping order) and one fabric-wide flit-drop
    /// schedule. [`Crossbar::new`] applies the process-wide
    /// [`sa_faults::default_plan`] automatically; call this to override it.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for (i, pf) in self.port_faults.iter_mut().enumerate() {
            pf.inj = plan.injector(FaultSite::NetInject, 0, i as u64);
        }
        self.drop_faults = plan.injector(FaultSite::NetDeliver, 0, 0);
    }

    /// Resilience counters: NACKed injections, dropped flits, and
    /// retransmitted deliveries. All zero unless a fault plan is installed.
    pub fn resilience_stats(&self) -> ResilienceStats {
        let mut s = self.resilience;
        for pf in &self.port_faults {
            s.merge(&pf.stats);
        }
        s
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Whether node `src`'s injection queue can take one more message.
    pub fn can_inject(&self, src: usize) -> bool {
        self.in_q[src].can_accept()
    }

    /// Queue a message at its source port.
    ///
    /// # Errors
    ///
    /// Returns the message back when the source queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range.
    pub fn try_inject(&mut self, msg: Message<T>) -> Result<(), Message<T>> {
        self.try_send(msg).map_err(|e| e.msg)
    }

    /// Queue a message at its source port, distinguishing a fault-injected
    /// NACK from ordinary back-pressure (see [`SendError`]). With no fault
    /// plan installed this is exactly [`Crossbar::try_inject`].
    ///
    /// # Errors
    ///
    /// Returns the message back with `nack: true` when the fabric NACKed
    /// the injection, or `nack: false` when the source queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range.
    pub fn try_send(&mut self, msg: Message<T>) -> Result<(), SendError<T>> {
        assert!(msg.src < self.n && msg.dst < self.n, "port out of range");
        let src = msg.src;
        if self.in_q[src].can_accept() && self.port_faults[src].nacks() {
            return Err(SendError { msg, nack: true });
        }
        self.in_q[src]
            .try_push((msg, Cycle::ZERO))
            .map_err(|(m, _)| SendError {
                msg: m,
                nack: false,
            })
    }

    /// Queue a message at its source port, stamping [`ReqStage::Crossbar`]
    /// on the carried request's lifecycle record when it enters the fabric.
    ///
    /// The crossbar is generic over its payload, so the caller names the
    /// request id (if the message carries one); pass `None` for traffic with
    /// no single originating request, such as evicted partial-sum lines.
    ///
    /// # Errors
    ///
    /// Returns the message back when the source queue is full (nothing is
    /// stamped in that case).
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range.
    pub fn try_inject_traced(
        &mut self,
        msg: Message<T>,
        now: Cycle,
        req: Option<ReqId>,
        tracer: &mut ReqTracer,
    ) -> Result<(), Message<T>> {
        let r = self.try_inject(msg);
        if r.is_ok() {
            if let Some(id) = req {
                tracer.stamp(id, ReqStage::Crossbar, now.raw());
            }
        }
        r
    }

    /// [`Crossbar::try_send`] with the lifecycle stamping of
    /// [`Crossbar::try_inject_traced`].
    ///
    /// # Errors
    ///
    /// Returns the message back (nothing stamped) with `nack` telling a
    /// fault-injected NACK from a full source queue.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range.
    pub fn try_send_traced(
        &mut self,
        msg: Message<T>,
        now: Cycle,
        req: Option<ReqId>,
        tracer: &mut ReqTracer,
    ) -> Result<(), SendError<T>> {
        let r = self.try_send(msg);
        if r.is_ok() {
            if let Some(id) = req {
                tracer.stamp(id, ReqStage::Crossbar, now.raw());
            }
        }
        r
    }

    /// Classify the fabric's state at the start of a cycle for occupancy
    /// accounting: ports that will move words this cycle → busy; messages
    /// only in hop-latency flight or undrained delivery queues → blocked;
    /// empty → idle. At capacity when some injection queue is full. Shared
    /// by the per-cycle tick and the fast-forward fold (whose windows
    /// freeze exactly this state).
    fn occ_state(&self, now: Cycle) -> (OccClass, bool) {
        let moving = self.tx.iter().any(Option::is_some)
            || self.rx.iter().any(Option::is_some)
            || self.rx_wait.iter().any(|q| !q.is_empty())
            || self.in_q.iter().any(|q| !q.is_empty())
            || self
                .flight
                .front()
                .is_some_and(|&(arrive, _, _, _)| arrive <= now);
        let class = if moving {
            OccClass::Busy
        } else if !self.flight.is_empty() || self.out_q.iter().any(|q| !q.is_empty()) {
            OccClass::Blocked
        } else {
            OccClass::Idle
        };
        (class, self.in_q.iter().any(|q| !q.can_accept()))
    }

    /// Advance the fabric one cycle.
    pub fn tick(&mut self, now: Cycle) {
        let (class, at_capacity) = self.occ_state(now);
        self.stats.occ.cycle(class, at_capacity);
        for q in self.in_q.iter_mut().chain(self.out_q.iter_mut()) {
            q.advance(now.raw());
        }
        let bw = self.cfg.node_words_per_cycle;

        // Ejection: move up to `bw` words per port into the delivery queue;
        // several small messages may complete in one cycle on a wide port.
        for d in 0..self.n {
            let mut budget = bw;
            while budget > 0 {
                if self.rx[d].is_none() {
                    // Anything in rx_wait has already arrived (the flight
                    // stage gates on arrival time).
                    match self.rx_wait[d].pop_front() {
                        Some((entered, msg)) => {
                            self.rx[d] = Some(PortTx {
                                entered,
                                words_left: msg.words,
                                msg,
                            });
                        }
                        None => break,
                    }
                }
                let p = self.rx[d].as_mut().expect("filled above");
                let spend = p.words_left.min(budget);
                p.words_left -= spend;
                budget -= spend;
                if p.words_left > 0 {
                    break;
                }
                if self.out_q[d].can_accept() {
                    let p = self.rx[d].take().expect("present");
                    self.stats.delivered += 1;
                    self.stats.words += u64::from(p.msg.words);
                    self.stats.total_latency += now.since(p.entered);
                    self.out_q[d]
                        .try_push((p.msg, now))
                        .ok()
                        .expect("capacity checked");
                } else {
                    self.stats.eject_stalls += 1;
                    break;
                }
            }
        }

        // Flight: release arrivals to their destination wait queues. The
        // fault schedule may drop a released flit; link-level retransmission
        // re-enqueues it for one more hop (arrival `now + hop`, preserving
        // the sorted-by-arrival invariant `next_event` relies on) and the
        // copy that eventually lands is counted as recovered.
        let rehop = u64::from(self.cfg.hop_latency).max(1);
        while self
            .flight
            .front()
            .is_some_and(|(arrive, _, _, _)| *arrive <= now)
        {
            let (_, entered, resent, msg) = self.flight.pop_front().expect("front checked");
            if self.drop_faults.is_active() && self.drop_faults.next() == Some(FaultKind::NetDrop) {
                self.resilience.net_dropped += 1;
                self.flight.push_back((now + rehop, entered, true, msg));
                continue;
            }
            if resent {
                self.resilience.net_recovered += 1;
            }
            let d = msg.dst;
            self.rx_wait[d].push_back((entered, msg));
        }

        // Injection: move up to `bw` words per source port.
        for s in 0..self.n {
            let mut budget = bw;
            while budget > 0 {
                if self.tx[s].is_none() {
                    match self.in_q[s].pop() {
                        Some((msg, _)) => {
                            self.tx[s] = Some(PortTx {
                                entered: now,
                                words_left: msg.words,
                                msg,
                            });
                        }
                        None => break,
                    }
                }
                let p = self.tx[s].as_mut().expect("filled above");
                let spend = p.words_left.min(budget);
                p.words_left -= spend;
                budget -= spend;
                if p.words_left > 0 {
                    break;
                }
                let p = self.tx[s].take().expect("present");
                self.flight.push_back((
                    now + u64::from(self.cfg.hop_latency),
                    p.entered,
                    false,
                    p.msg,
                ));
            }
        }
    }

    /// Next message delivered at node `dst`, if any.
    pub fn pop_delivered(&mut self, dst: usize) -> Option<Message<T>> {
        self.out_q[dst].pop().map(|(m, _)| m)
    }

    /// Peek the next delivered message at `dst` without consuming it, so the
    /// receiver can check its own resources first (leaving it queued
    /// back-pressures the fabric).
    pub fn peek_delivered(&self, dst: usize) -> Option<&Message<T>> {
        self.out_q[dst].front().map(|(m, _)| m)
    }

    /// Earliest future cycle at which the fabric can change state on its own
    /// (the event horizon). `None` means it is completely empty and only new
    /// injections can wake it; a coordinator may then fast-forward.
    ///
    /// Any active port transfer or queued message pins the horizon to
    /// `now + 1`: ports move words every cycle, and undrained delivery
    /// queues wait on the caller (which may consume them next cycle).
    /// Otherwise the only future event is the arrival of the oldest
    /// in-flight message — the hop latency is constant, so the flight queue
    /// is sorted by arrival time and its front is the horizon.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.tx.iter().any(Option::is_some)
            || self.rx.iter().any(Option::is_some)
            || self.rx_wait.iter().any(|q| !q.is_empty())
            || self.in_q.iter().any(|q| !q.is_empty())
            || self.out_q.iter().any(|q| !q.is_empty())
        {
            return Some(now + 1);
        }
        self.flight
            .front()
            .map(|&(arrive, _, _, _)| arrive.max(now + 1))
    }

    /// Fold `skipped` un-ticked cycles (fast-forward) into the fabric's
    /// busy/blocked/idle account. The caller guarantees no port, queue, or
    /// arrival makes progress during the window (see
    /// [`next_event`](Self::next_event)), so the frozen state classifies
    /// every skipped cycle exactly as per-cycle ticking would.
    pub fn skip_cycles(&mut self, now: Cycle, skipped: u64) {
        debug_assert!(
            self.next_event(now).is_none_or(|t| t > now + skipped),
            "fast-forward skipped past a crossbar event"
        );
        let (class, at_capacity) = self.occ_state(now);
        self.stats.occ.skip(skipped, class, at_capacity);
    }

    /// Whether nothing is queued or in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.in_q.iter().all(|q| q.is_empty())
            && self.tx.iter().all(|t| t.is_none())
            && self.flight.is_empty()
            && self.rx_wait.iter().all(|q| q.is_empty())
            && self.rx.iter().all(|t| t.is_none())
            && self.out_q.iter().all(|q| q.is_empty())
    }

    /// Fabric counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Merged injection-queue statistics (for stall diagnosis).
    pub fn inject_queue_stats(&self) -> QueueStats {
        let mut s = QueueStats::default();
        for q in &self.in_q {
            s.merge(q.stats());
        }
        s
    }

    /// Detach node `i`'s edge queues as an owned [`CrossbarPort`], so a
    /// phase-parallel scheduler can hand each node exclusive access to its
    /// own injection and delivery queues while other nodes step
    /// concurrently.
    ///
    /// The crossbar keeps fresh, empty stand-in queues while the port is
    /// out. The caller MUST [`Crossbar::attach_port`] the port back before
    /// the next [`Crossbar::tick`] — ticking with a detached port would
    /// route traffic through the stand-ins and silently drop it.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn detach_port(&mut self, i: usize) -> CrossbarPort<T> {
        assert!(i < self.n, "port out of range");
        let (mut inject, mut deliver) = self.spares[i].take().unwrap_or_else(|| {
            (
                BoundedQueue::new(self.cfg.queue_depth),
                BoundedQueue::new(self.cfg.queue_depth),
            )
        });
        std::mem::swap(&mut self.in_q[i], &mut inject);
        std::mem::swap(&mut self.out_q[i], &mut deliver);
        CrossbarPort {
            index: i,
            inject,
            deliver,
            faults: std::mem::take(&mut self.port_faults[i]),
        }
    }

    /// Re-attach a port taken with [`Crossbar::detach_port`], restoring its
    /// queues (and their accumulated statistics) to the fabric.
    ///
    /// # Panics
    ///
    /// Panics if the port's index is out of range for this crossbar.
    pub fn attach_port(&mut self, mut port: CrossbarPort<T>) {
        assert!(port.index < self.n, "port out of range");
        std::mem::swap(&mut self.in_q[port.index], &mut port.inject);
        std::mem::swap(&mut self.out_q[port.index], &mut port.deliver);
        self.port_faults[port.index] = std::mem::take(&mut port.faults);
        // After the swaps the port holds the (empty) stand-ins; keep their
        // allocations for the next detach.
        self.spares[port.index] = Some((port.inject, port.deliver));
    }
}

impl<T> sa_telemetry::Inspectable for Crossbar<T> {
    fn probe_kind(&self) -> &'static str {
        "crossbar"
    }

    /// Aggregate fabric occupancy. Only meaningful while all ports are
    /// attached — a multinode coordinator snapshots after the re-attach
    /// point of its step, never mid-phase.
    fn probe_json(&self) -> sa_telemetry::Json {
        use sa_telemetry::Json;
        let mut o = Json::obj();
        o.push("ports", Json::UInt(self.n as u64));
        o.push("in_flight", Json::UInt(self.flight.len() as u64));
        let in_q: usize = self.in_q.iter().map(BoundedQueue::len).sum();
        let out_q: usize = self.out_q.iter().map(BoundedQueue::len).sum();
        let rx_wait: usize = self.rx_wait.iter().map(VecDeque::len).sum();
        o.push("in_q", Json::UInt(in_q as u64));
        o.push("out_q", Json::UInt(out_q as u64));
        o.push("rx_wait", Json::UInt(rx_wait as u64));
        let tx_busy = self.tx.iter().filter(|t| t.is_some()).count();
        let rx_busy = self.rx.iter().filter(|r| r.is_some()).count();
        o.push("tx_busy", Json::UInt(tx_busy as u64));
        o.push("rx_busy", Json::UInt(rx_busy as u64));
        o
    }
}

/// One node's detached view of the crossbar: its injection queue and its
/// delivery queue (see [`Crossbar::detach_port`]). Port operations mirror
/// the corresponding [`Crossbar`] methods exactly, so a scheduler stepping
/// nodes against detached ports behaves bit-identically to one calling the
/// crossbar directly.
#[derive(Debug)]
pub struct CrossbarPort<T> {
    index: usize,
    inject: BoundedQueue<(Message<T>, Cycle)>,
    deliver: BoundedQueue<(Message<T>, Cycle)>,
    faults: PortFaults,
}

impl<T> CrossbarPort<T> {
    /// The node this port belongs to.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the injection queue can take one more message
    /// (mirrors [`Crossbar::can_inject`]).
    pub fn can_inject(&self) -> bool {
        self.inject.can_accept()
    }

    /// Queue a message at this source port (mirrors
    /// [`Crossbar::try_inject`]).
    ///
    /// # Errors
    ///
    /// Returns the message back when the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if the message's source is not this port.
    pub fn try_inject(&mut self, msg: Message<T>) -> Result<(), Message<T>> {
        self.try_send(msg).map_err(|e| e.msg)
    }

    /// Queue a message, distinguishing a fault-injected NACK from a full
    /// queue (mirrors [`Crossbar::try_send`] — the NACK schedule is
    /// port-local state that travelled here with the detach, so the
    /// decision stream is identical to the attached path).
    ///
    /// # Errors
    ///
    /// Returns the message back with `nack: true` on an injected NACK,
    /// `nack: false` when the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if the message's source is not this port.
    pub fn try_send(&mut self, msg: Message<T>) -> Result<(), SendError<T>> {
        assert_eq!(msg.src, self.index, "message source must match the port");
        if self.inject.can_accept() && self.faults.nacks() {
            return Err(SendError { msg, nack: true });
        }
        self.inject
            .try_push((msg, Cycle::ZERO))
            .map_err(|(m, _)| SendError {
                msg: m,
                nack: false,
            })
    }

    /// Queue a message, stamping [`ReqStage::Crossbar`] on the carried
    /// request's lifecycle record (mirrors [`Crossbar::try_inject_traced`]).
    ///
    /// # Errors
    ///
    /// Returns the message back when the queue is full (nothing is stamped).
    ///
    /// # Panics
    ///
    /// Panics if the message's source is not this port.
    pub fn try_inject_traced(
        &mut self,
        msg: Message<T>,
        now: Cycle,
        req: Option<ReqId>,
        tracer: &mut ReqTracer,
    ) -> Result<(), Message<T>> {
        let r = self.try_inject(msg);
        if r.is_ok() {
            if let Some(id) = req {
                tracer.stamp(id, ReqStage::Crossbar, now.raw());
            }
        }
        r
    }

    /// [`CrossbarPort::try_send`] with lifecycle stamping (mirrors
    /// [`Crossbar::try_send_traced`]).
    ///
    /// # Errors
    ///
    /// Returns the message back (nothing stamped) with `nack` telling a
    /// fault-injected NACK from a full queue.
    ///
    /// # Panics
    ///
    /// Panics if the message's source is not this port.
    pub fn try_send_traced(
        &mut self,
        msg: Message<T>,
        now: Cycle,
        req: Option<ReqId>,
        tracer: &mut ReqTracer,
    ) -> Result<(), SendError<T>> {
        let r = self.try_send(msg);
        if r.is_ok() {
            if let Some(id) = req {
                tracer.stamp(id, ReqStage::Crossbar, now.raw());
            }
        }
        r
    }

    /// Next delivered message, if any (mirrors [`Crossbar::pop_delivered`]).
    pub fn pop_delivered(&mut self) -> Option<Message<T>> {
        self.deliver.pop().map(|(m, _)| m)
    }

    /// Peek the next delivered message without consuming it (mirrors
    /// [`Crossbar::peek_delivered`]).
    pub fn peek_delivered(&self) -> Option<&Message<T>> {
        self.deliver.front().map(|(m, _)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low() -> NetworkConfig {
        NetworkConfig::low()
    }

    fn high() -> NetworkConfig {
        NetworkConfig::high()
    }

    fn run_until_delivered<T>(
        net: &mut Crossbar<T>,
        dst: usize,
        start: Cycle,
        limit: u64,
    ) -> (Message<T>, Cycle) {
        let mut now = start;
        for _ in 0..limit {
            now += 1;
            net.tick(now);
            if let Some(m) = net.pop_delivered(dst) {
                return (m, now);
            }
        }
        panic!("no delivery within {limit} cycles");
    }

    #[test]
    fn delivers_in_order_per_pair() {
        let mut net: Crossbar<u32> = Crossbar::new(4, high());
        for i in 0..5 {
            net.try_inject(Message::new(0, 2, 1, i)).unwrap();
        }
        let mut got = Vec::new();
        let mut now = Cycle(0);
        while got.len() < 5 {
            now += 1;
            net.tick(now);
            while let Some(m) = net.pop_delivered(2) {
                got.push(m.payload);
            }
            assert!(now.raw() < 10_000);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(net.is_idle());
    }

    #[test]
    fn traced_injection_stamps_crossbar_entry() {
        let mut net: Crossbar<u32> = Crossbar::new(2, high());
        let mut tracer = ReqTracer::every(1);
        tracer.issue(42, 0, 3);
        net.try_inject_traced(Message::new(0, 1, 1, 7), Cycle(5), Some(42), &mut tracer)
            .unwrap();
        // Traffic without an originating request stamps nothing.
        net.try_inject_traced(Message::new(0, 1, 1, 8), Cycle(6), None, &mut tracer)
            .unwrap();
        let rec = tracer.retire(42, 9).expect("record is live");
        assert_eq!(rec.stamp_at(ReqStage::Crossbar), Some(5));
        assert_eq!(tracer.issued_len(), 1);
    }

    #[test]
    fn latency_includes_hop_and_serialization() {
        let cfg = low(); // 1 word/cycle, hop 50
        let mut net: Crossbar<()> = Crossbar::new(2, cfg);
        net.try_inject(Message::new(0, 1, 4, ())).unwrap();
        let (_, at) = run_until_delivered(&mut net, 1, Cycle(0), 10_000);
        // 4 cycles tx + 50 hop + 4 cycles rx, ±accounting edges.
        assert!(at.raw() >= 56, "too fast: {at}");
        assert!(at.raw() <= 62, "too slow: {at}");
    }

    #[test]
    fn low_bandwidth_serializes_wide_messages() {
        // 64 words at 1 word/cycle must take ≥ 64 cycles of port time;
        // at 8 words/cycle it takes 8.
        let t_low = {
            let mut net: Crossbar<()> = Crossbar::new(2, low());
            net.try_inject(Message::new(0, 1, 64, ())).unwrap();
            run_until_delivered(&mut net, 1, Cycle(0), 10_000).1
        };
        let t_high = {
            let mut net: Crossbar<()> = Crossbar::new(2, high());
            net.try_inject(Message::new(0, 1, 64, ())).unwrap();
            run_until_delivered(&mut net, 1, Cycle(0), 10_000).1
        };
        assert!(
            t_low.raw() >= t_high.raw() + 100,
            "low {t_low} should be ≥ high {t_high} + 2×56"
        );
    }

    #[test]
    fn throughput_respects_per_node_limit() {
        // Saturate one destination from three sources at 1 word/cycle: the
        // ejection port limits aggregate throughput to ~1 word/cycle.
        let mut net: Crossbar<u64> = Crossbar::new(4, low());
        let mut delivered_words = 0u64;
        let total = 3_000u64;
        let mut now = Cycle(0);
        let mut sent = 0u64;
        while delivered_words < total {
            now += 1;
            for s in 0..3 {
                if sent < total && net.can_inject(s) {
                    net.try_inject(Message::new(s, 3, 1, sent)).unwrap();
                    sent += 1;
                }
            }
            net.tick(now);
            while let Some(m) = net.pop_delivered(3) {
                delivered_words += u64::from(m.words);
            }
            assert!(now.raw() < 100_000);
        }
        let rate = delivered_words as f64 / now.raw() as f64;
        assert!(rate <= 1.0 + 1e-9, "ejection exceeded 1 word/cycle: {rate}");
        assert!(rate > 0.8, "should approach the port limit: {rate}");
    }

    #[test]
    fn back_pressure_on_full_delivery_queue() {
        let cfg = NetworkConfig {
            node_words_per_cycle: 8,
            hop_latency: 1,
            queue_depth: 2,
        };
        let mut net: Crossbar<u32> = Crossbar::new(2, cfg);
        // Keep injecting while ticking but never drain: the delivery queue
        // (depth 2) fills and the fabric stalls rather than dropping.
        let mut now = Cycle(0);
        let mut sent = 0;
        for _ in 0..100 {
            now += 1;
            while sent < 6 && net.can_inject(0) {
                net.try_inject(Message::new(0, 1, 1, sent)).unwrap();
                sent += 1;
            }
            net.tick(now);
        }
        assert_eq!(sent, 6);
        assert!(net.stats().eject_stalls > 0, "ejection must have stalled");
        // Drain: every message eventually arrives, in order.
        let mut got = Vec::new();
        for _ in 0..200 {
            now += 1;
            net.tick(now);
            while let Some(m) = net.pop_delivered(1) {
                got.push(m.payload);
            }
        }
        assert_eq!(got.len(), 6, "nothing was dropped");
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn injection_queue_rejects_when_full() {
        let cfg = NetworkConfig {
            node_words_per_cycle: 1,
            hop_latency: 10,
            queue_depth: 2,
        };
        let mut net: Crossbar<u32> = Crossbar::new(2, cfg);
        assert!(net.try_inject(Message::new(0, 1, 8, 0)).is_ok());
        assert!(net.try_inject(Message::new(0, 1, 8, 1)).is_ok());
        assert!(net.try_inject(Message::new(0, 1, 8, 2)).is_err());
        assert!(net.inject_queue_stats().rejected > 0);
    }

    #[test]
    fn distinct_pairs_transfer_concurrently() {
        // 0→1 and 2→3 do not share ports: both complete as fast as one.
        let solo = {
            let mut net: Crossbar<()> = Crossbar::new(4, low());
            net.try_inject(Message::new(0, 1, 32, ())).unwrap();
            run_until_delivered(&mut net, 1, Cycle(0), 10_000).1
        };
        let mut net: Crossbar<()> = Crossbar::new(4, low());
        net.try_inject(Message::new(0, 1, 32, ())).unwrap();
        net.try_inject(Message::new(2, 3, 32, ())).unwrap();
        let mut now = Cycle(0);
        let mut done = 0;
        while done < 2 {
            now += 1;
            net.tick(now);
            if net.pop_delivered(1).is_some() {
                done += 1;
            }
            if net.pop_delivered(3).is_some() {
                done += 1;
            }
            assert!(now.raw() < 10_000);
        }
        assert!(
            now.raw() <= solo.raw() + 2,
            "parallel pairs ({now}) as fast as solo ({solo})"
        );
    }

    #[test]
    fn detached_ports_behave_like_direct_access() {
        // Drive the same traffic twice — once through Crossbar methods,
        // once through detached ports — and require identical outcomes.
        let drive_direct = |mut net: Crossbar<u32>| {
            let mut got = Vec::new();
            let mut now = Cycle(0);
            let mut sent = 0;
            for _ in 0..200 {
                now += 1;
                net.tick(now);
                if sent < 5 && net.can_inject(0) {
                    net.try_inject(Message::new(0, 1, 2, sent)).unwrap();
                    sent += 1;
                }
                while let Some(m) = net.pop_delivered(1) {
                    got.push(m.payload);
                }
            }
            (got, net.stats())
        };
        let drive_ports = |mut net: Crossbar<u32>| {
            let mut got = Vec::new();
            let mut now = Cycle(0);
            let mut sent = 0;
            for _ in 0..200 {
                now += 1;
                net.tick(now);
                let mut p0 = net.detach_port(0);
                let mut p1 = net.detach_port(1);
                if sent < 5 && p0.can_inject() {
                    p0.try_inject(Message::new(0, 1, 2, sent)).unwrap();
                    sent += 1;
                }
                while let Some(m) = p1.pop_delivered() {
                    got.push(m.payload);
                }
                net.attach_port(p0);
                net.attach_port(p1);
            }
            (got, net.stats())
        };
        let (got_a, stats_a) = drive_direct(Crossbar::new(2, low()));
        let (got_b, stats_b) = drive_ports(Crossbar::new(2, low()));
        assert_eq!(got_a, vec![0, 1, 2, 3, 4]);
        assert_eq!(got_a, got_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn detached_port_traced_injection_stamps() {
        let mut net: Crossbar<u32> = Crossbar::new(2, high());
        let mut tracer = ReqTracer::every(1);
        tracer.issue(8, 0, 1);
        let mut p = net.detach_port(0);
        assert_eq!(p.index(), 0);
        p.try_inject_traced(Message::new(0, 1, 1, 7), Cycle(2), Some(8), &mut tracer)
            .unwrap();
        net.attach_port(p);
        let rec = tracer.retire(8, 5).expect("record is live");
        assert_eq!(rec.stamp_at(ReqStage::Crossbar), Some(2));
        let (m, _) = run_until_delivered(&mut net, 1, Cycle(2), 1000);
        assert_eq!(m.payload, 7);
    }

    #[test]
    fn next_event_tracks_fabric_state() {
        let cfg = NetworkConfig {
            node_words_per_cycle: 8,
            hop_latency: 20,
            queue_depth: 4,
        };
        let mut net: Crossbar<u32> = Crossbar::new(2, cfg);
        assert_eq!(
            net.next_event(Cycle(0)),
            None,
            "empty fabric has no horizon"
        );
        net.try_inject(Message::new(0, 1, 1, 7)).unwrap();
        assert_eq!(
            net.next_event(Cycle(0)),
            Some(Cycle(1)),
            "queued injection pins the horizon to the next cycle"
        );
        // One tick moves the 1-word message through tx into flight; the
        // fabric then waits out the hop latency.
        net.tick(Cycle(1));
        assert_eq!(
            net.next_event(Cycle(1)),
            Some(Cycle(21)),
            "in-flight horizon is the arrival cycle"
        );
        // Never report the past: an overdue arrival is claimed next cycle.
        assert_eq!(net.next_event(Cycle(30)), Some(Cycle(31)));
        // Tick at arrival: the message lands in the destination wait queue
        // (ejection runs before flight release), pinning the horizon.
        net.tick(Cycle(21));
        assert_eq!(net.next_event(Cycle(21)), Some(Cycle(22)));
        // The next tick ejects it into the delivery queue, which waits on
        // the caller and still pins the horizon until drained.
        net.tick(Cycle(22));
        assert_eq!(net.next_event(Cycle(22)), Some(Cycle(23)));
        assert_eq!(net.pop_delivered(1).map(|m| m.payload), Some(7));
        assert_eq!(net.next_event(Cycle(23)), None);
    }

    fn plan(json: &str) -> FaultPlan {
        FaultPlan::parse(json).expect("valid plan")
    }

    #[test]
    fn nacked_sends_are_identical_attached_and_detached() {
        let nack_plan = plan(
            r#"{"schema":"sa-faultplan","version":1,"seed":11,
                "faults":[{"kind":"net_nack","period":3,"max":4}]}"#,
        );
        // Drive the same traffic through Crossbar::try_send and through a
        // detached port: the NACK decisions, deliveries, and counters must
        // be bit-identical because the schedule is port-local state.
        let drive = |detached: bool| {
            let mut net: Crossbar<u64> = Crossbar::new(2, high());
            net.set_fault_plan(&nack_plan);
            let mut got = Vec::new();
            let mut nacks = Vec::new();
            let mut now = Cycle(0);
            for i in 0..40u64 {
                now += 1;
                net.tick(now);
                if detached {
                    let mut p0 = net.detach_port(0);
                    let mut p1 = net.detach_port(1);
                    match p0.try_send(Message::new(0, 1, 1, i)) {
                        Ok(()) => {}
                        Err(e) => {
                            assert!(e.nack, "queue never fills at this rate");
                            nacks.push(i);
                        }
                    }
                    while let Some(m) = p1.pop_delivered() {
                        got.push(m.payload);
                    }
                    net.attach_port(p0);
                    net.attach_port(p1);
                } else {
                    match net.try_send(Message::new(0, 1, 1, i)) {
                        Ok(()) => {}
                        Err(e) => {
                            assert!(e.nack, "queue never fills at this rate");
                            nacks.push(i);
                        }
                    }
                    while let Some(m) = net.pop_delivered(1) {
                        got.push(m.payload);
                    }
                }
            }
            (got, nacks, net.resilience_stats())
        };
        let (got_a, nacks_a, res_a) = drive(false);
        let (got_b, nacks_b, res_b) = drive(true);
        assert_eq!(nacks_a.len(), 4, "the plan caps NACKs at 4: {nacks_a:?}");
        assert_eq!(got_a, got_b);
        assert_eq!(nacks_a, nacks_b);
        assert_eq!(res_a, res_b);
        assert_eq!(res_a.net_nacks, 4);
    }

    #[test]
    fn dropped_flit_is_retransmitted_and_counted() {
        let mut net: Crossbar<u32> = Crossbar::new(2, high());
        net.set_fault_plan(&plan(
            r#"{"schema":"sa-faultplan","version":1,"seed":1,
                "faults":[{"kind":"net_drop","period":1,"max":1}]}"#,
        ));
        net.try_inject(Message::new(0, 1, 1, 9)).unwrap();
        let (m, at) = run_until_delivered(&mut net, 1, Cycle(0), 10_000);
        assert_eq!(m.payload, 9);
        let res = net.resilience_stats();
        assert_eq!(res.net_dropped, 1);
        assert_eq!(res.net_recovered, 1);
        assert_eq!(net.stats().delivered, 1);
        // The retransmission costs one extra hop.
        let hop = u64::from(high().hop_latency);
        assert!(
            at.raw() >= 2 * hop,
            "delivery at {at} should include a retransmitted hop of {hop}"
        );
        assert!(net.is_idle());
    }

    #[test]
    fn send_error_distinguishes_nack_from_back_pressure() {
        let cfg = NetworkConfig {
            node_words_per_cycle: 1,
            hop_latency: 10,
            queue_depth: 1,
        };
        let mut net: Crossbar<u32> = Crossbar::new(2, cfg);
        // No plan: filling the queue reports back-pressure, never a NACK.
        assert!(net.try_send(Message::new(0, 1, 8, 0)).is_ok());
        let e = net.try_send(Message::new(0, 1, 8, 1)).unwrap_err();
        assert!(!e.nack, "full queue is ordinary back-pressure");
        assert_eq!(e.msg.payload, 1);
        // An always-NACK plan refuses an injection the queue had room for.
        let mut net: Crossbar<u32> = Crossbar::new(2, cfg);
        net.set_fault_plan(&plan(
            r#"{"schema":"sa-faultplan","version":1,"seed":2,
                "faults":[{"kind":"net_nack","period":1}]}"#,
        ));
        let e = net.try_send(Message::new(0, 1, 1, 7)).unwrap_err();
        assert!(e.nack, "injected NACK is flagged");
        assert_eq!(net.resilience_stats().net_nacks, 1);
    }

    #[test]
    fn empty_plan_leaves_resilience_counters_at_zero() {
        let mut net: Crossbar<u32> = Crossbar::new(2, high());
        net.set_fault_plan(&FaultPlan::empty());
        for i in 0..10 {
            net.try_inject(Message::new(0, 1, 1, i)).unwrap();
        }
        let mut now = Cycle(0);
        for _ in 0..100 {
            now += 1;
            net.tick(now);
            while net.pop_delivered(1).is_some() {}
        }
        assert!(net.resilience_stats().is_zero());
        assert_eq!(net.stats().delivered, 10);
    }

    #[test]
    #[should_panic(expected = "source must match the port")]
    fn detached_port_rejects_foreign_source() {
        let mut net: Crossbar<()> = Crossbar::new(2, high());
        let mut p = net.detach_port(0);
        let _ = p.try_inject(Message::new(1, 0, 1, ()));
    }

    #[test]
    #[should_panic(expected = "zero-word message")]
    fn zero_word_message_rejected() {
        let _ = Message::new(0, 1, 0, ());
    }

    #[test]
    #[should_panic(expected = "port out of range")]
    fn out_of_range_port_rejected() {
        let mut net: Crossbar<()> = Crossbar::new(2, high());
        let _ = net.try_inject(Message::new(0, 5, 1, ()));
    }
}
