//! A dependency-free, offline stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` cannot be vendored from crates.io. This crate implements
//! the *subset* of the proptest API the workspace's tests use — the
//! [`proptest!`] macro, integer-range / tuple / mapped / collection / sample
//! strategies, and the `prop_assert*` family — on top of a small
//! deterministic PRNG.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   generated inputs' `Debug` form, but is not minimized.
//! * **Determinism.** Cases are derived from a fixed seed (hash of the test
//!   name and the case index), so every run explores the same inputs. This
//!   matches the repo-wide policy that simulations are reproducible.
//!
//! [`proptest`]: https://docs.rs/proptest

/// Deterministic split-mix PRNG used to drive generation.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Rng {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// A deterministic per-case RNG: hash of the test path and case index.
    pub fn for_case(test_path: &str, case: u64) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Rng::new(h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift; bias is negligible for test-input purposes.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (the proptest core abstraction, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut Rng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut Rng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Boxing helper used by [`prop_oneof!`] so heterogeneous strategies with a
/// common value type unify.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> OneOf<T> {
    /// Choose uniformly among `alts`.
    pub fn new(alts: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(alts)
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy yielding [`Arbitrary`] values.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy combinators over collections and samples (`prop::...` paths).
pub mod prop {
    /// `prop::collection` — strategies over containers.
    pub mod collection {
        use super::super::{Rng, Strategy};

        /// Inclusive size bounds for generated collections.
        #[derive(Copy, Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<S::Value>` of a size drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo + 1) as u64;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `prop::sample` — choosing among explicit options.
    pub mod sample {
        use super::super::{Rng, Strategy};

        /// Strategy drawing uniformly from a fixed list.
        pub struct Select<T: Clone>(Vec<T>);

        /// `prop::sample::select(options)`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty list");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut Rng) -> T {
                let i = rng.below(self.0.len() as u64) as usize;
                self.0[i].clone()
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Assert a condition inside a property; failure aborts only this case with
/// a message instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert two values compare equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Assert two values compare unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// The property-test declaration macro. Each `fn name(x in strategy, ...)`
/// expands to a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::Rng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}:\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let s = prop::collection::vec(0u64..100, 1..10);
        let a: Vec<Vec<u64>> = (0..5)
            .map(|c| Strategy::generate(&s, &mut crate::Rng::for_case("t", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..5)
            .map(|c| Strategy::generate(&s, &mut crate::Rng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::Rng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_end_to_end(xs in prop::collection::vec(0u64..50, 1..20), k in 1usize..4) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(k.min(3), k, "k is already < 4");
            let picked = prop_oneof![Just(1u8), Just(2u8)];
            let v = Strategy::generate(&picked, &mut crate::Rng::new(0));
            prop_assert!(v == 1 || v == 2);
        }
    }
}
