//! Memoization properties of the content-addressed result cache: for any
//! workload, machine configuration, and seed, a cache-disabled run, a cold
//! cached run, and a warm cached run produce identical [`SessionReport`]s
//! (down to serialized bytes), and the warm run is a pure replay — one
//! lookup hit, zero simulation.

use std::sync::Arc;

use proptest::prelude::*;

use sa_sim::Rng64;
use scatter_add_repro::{
    MachineConfig, NetworkConfig, ResultCache, Session, SessionBuilder, Topology, Workload,
};

/// Run the same session three ways — no cache, cold cache, warm cache — and
/// assert the byte-identity and zero-simulation contracts.
fn assert_replay(mk: impl Fn() -> SessionBuilder) {
    let direct = mk().build().expect("valid session").run();

    let digest = mk().build().expect("valid session").fingerprint().digest();
    let dir = std::env::temp_dir().join(format!("sa-memo-prop-{digest}"));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_cache = Arc::new(ResultCache::open(&dir).expect("open cache"));
    let cold = mk()
        .cache(cold_cache.clone())
        .build()
        .expect("valid session")
        .run();
    assert_eq!(
        (cold_cache.hits(), cold_cache.misses(), cold_cache.stores()),
        (0, 1, 1),
        "cold run must miss once and store once"
    );

    // A fresh handle on the same directory: its counters start at zero, so
    // a (1, 0, 0) outcome proves the warm run simulated nothing.
    let warm_cache = Arc::new(ResultCache::open(&dir).expect("open cache"));
    let warm = mk()
        .cache(warm_cache.clone())
        .build()
        .expect("valid session")
        .run();
    assert_eq!(
        (warm_cache.hits(), warm_cache.misses(), warm_cache.stores()),
        (1, 0, 0),
        "warm run must be a pure hit with zero simulation"
    );

    assert_eq!(direct, cold, "cold cached run must equal the uncached run");
    assert_eq!(direct, warm, "warm replay must equal the uncached run");
    assert_eq!(
        direct.to_json().to_string_compact(),
        warm.to_json().to_string_compact(),
        "serialized reports must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_single_node_run_replays_from_cache(
        indices in prop::collection::vec(0u64..512, 1..200),
        cs_entries in 1usize..32,
        mshrs in 1usize..8,
        fetch in any::<bool>(),
    ) {
        let mut cfg = MachineConfig::merrimac();
        cfg.sa.cs_entries = cs_entries;
        cfg.cache.mshrs_per_bank = mshrs;
        assert_replay(|| {
            Session::builder()
                .config(cfg)
                .workload(Workload::Histogram {
                    base_word: 0,
                    indices: indices.clone(),
                })
                .fetch(fetch)
        });
    }

    #[test]
    fn any_multinode_run_replays_from_cache(
        trace in prop::collection::vec(0u64..4096, 1..200),
        seed in any::<u64>(),
        nodes_pow in 0u32..3,
        combining in any::<bool>(),
    ) {
        let mut rng = Rng64::new(seed);
        let values: Vec<f64> = trace
            .iter()
            .map(|_| rng.below(1 << 10) as f64 * 0.25)
            .collect();
        let nodes = 1usize << nodes_pow;
        assert_replay(|| {
            Session::builder()
                .workload(Workload::MultiNode {
                    nodes,
                    network: NetworkConfig::low(),
                    combining,
                    topology: Topology::Flat,
                    trace: trace.clone(),
                    values: values.clone(),
                })
        });
    }
}
