//! Differential harness: the hardware scatter-add unit checked against all
//! three software baselines (§4.1) on the paper's three index streams.
//!
//! Integer (histogram) workloads must agree **exactly** — addition of i64
//! counts is associative, so no ordering freedom is visible in the result.
//! Floating-point workloads (SpMV, MD) are compared under an explicit
//! accumulation-order error bound: each implementation sums a word's
//! contributions in a different order, and the worst-case discrepancy
//! between any two orderings of `k` terms is bounded by
//! `2 * (k - 1) * eps * Σ|v_i|` (standard forward-error analysis of
//! recursive summation).

use sa_apps::md::WaterSystem;
use sa_apps::mesh::Mesh;
use sa_apps::spmv::Ebe;
use sa_core::{drive_scatter, ScatterKernel, SensitivityRig};
use sa_sim::{MachineConfig, Rng64, SensitivityConfig};
use sa_sw::{coloring_result, privatization_result, sort_scan_result, DEFAULT_BATCH, DEFAULT_TILE};

fn machine() -> MachineConfig {
    MachineConfig::merrimac()
}

/// All three software baselines, as (name, raw result bits).
fn sw_baselines(kernel: &ScatterKernel, range: usize) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("sort+scan", sort_scan_result(kernel, range, DEFAULT_BATCH)),
        (
            "privatization",
            privatization_result(kernel, range, DEFAULT_TILE),
        ),
        ("coloring", coloring_result(kernel, range)),
    ]
}

/// Per-word accumulation-order tolerance: `2 * (k - 1) * eps * Σ|v|` where
/// `k` terms of total magnitude `Σ|v|` target the word, plus a tiny absolute
/// floor for words whose exact sum is zero.
fn tolerances(indices: &[u64], values: &[f64], range: usize) -> Vec<f64> {
    let mut count = vec![0u64; range];
    let mut mag = vec![0.0f64; range];
    for (&w, &v) in indices.iter().zip(values) {
        count[w as usize] += 1;
        mag[w as usize] += v.abs();
    }
    count
        .iter()
        .zip(&mag)
        .map(|(&k, &m)| 2.0 * k.saturating_sub(1) as f64 * f64::EPSILON * m + 1e-300)
        .collect()
}

/// Drive the hardware unit and every software baseline over an f64 stream
/// and check all results pairwise-equivalent within the ordering bound.
fn check_f64_stream(what: &str, indices: &[u64], values: &[f64]) {
    let range = indices.iter().copied().max().unwrap_or(0) as usize + 1;
    let kernel = ScatterKernel::superposition(0, indices.to_vec(), values);
    let tol = tolerances(indices, values, range);

    let hw = drive_scatter(&machine(), &kernel, false).result_f64(range);
    for (name, bits) in sw_baselines(&kernel, range) {
        for (w, (&h, &b)) in hw.iter().zip(&bits).enumerate() {
            let s = f64::from_bits(b);
            assert!(
                (h - s).abs() <= tol[w],
                "{what}/{name}: word {w}: hw={h} sw={s} tol={}",
                tol[w]
            );
        }
    }
}

#[test]
fn histogram_integer_results_are_exact_across_all_implementations() {
    let mut rng = Rng64::new(0xD1FF_0001);
    let n = 4000;
    let range = 1024u64;
    // Mixed stream: half the references hammer 8 hot bins, the rest spread
    // uniformly — exercises the combining store and every baseline's
    // collision handling.
    let indices: Vec<u64> = (0..n)
        .map(|_| {
            if rng.below(2) == 0 {
                rng.below(8)
            } else {
                rng.below(range)
            }
        })
        .collect();
    let kernel = ScatterKernel::histogram(0, indices.clone());
    let hw = drive_scatter(&machine(), &kernel, false).result_i64(range as usize);

    let rig = SensitivityRig::new(SensitivityConfig::default());
    assert_eq!(rig.run_histogram(&indices, range).bins, hw, "rig vs hw");

    for (name, bits) in sw_baselines(&kernel, range as usize) {
        let sw: Vec<i64> = bits.iter().map(|&b| b as i64).collect();
        assert_eq!(sw, hw, "histogram {name} differs from hardware");
    }
}

#[test]
fn spmv_accumulation_matches_within_ordering_bound() {
    // EBE SpMV: per-element contributions scatter-added into the result
    // vector; duplicate rows collide heavily at shared mesh nodes.
    let mesh = Mesh::generate(120, 14, 600, 0xD1FF_0002);
    let ebe = Ebe::new(&mesh);
    let indices = ebe.scatter_trace();
    let values = ebe.contributions(&mesh.test_vector(9));
    assert_eq!(indices.len(), values.len());
    check_f64_stream("spmv", &indices, &values);
}

#[test]
fn md_accumulation_matches_within_ordering_bound() {
    // Water kernel force accumulation: nine force words per molecule pair,
    // signed contributions (cancellation makes the bound matter).
    let sys = WaterSystem::generate(60, 0xD1FF_0003);
    let indices = sys.scatter_trace();
    let values = sys.contributions();
    assert_eq!(indices.len(), values.len());
    check_f64_stream("md", &indices, &values);
}

#[test]
fn software_baselines_agree_exactly_on_integer_streams() {
    // Pairwise differential of the three baselines themselves on a Zipf-like
    // skewed integer stream, independent of the hardware path.
    let mut rng = Rng64::new(0xD1FF_0004);
    let n = 3000;
    let range = 256usize;
    let indices: Vec<u64> = (0..n)
        .map(|_| {
            // Geometric-ish skew: keep halving the candidate range.
            let mut r = range as u64;
            while r > 1 && rng.below(2) == 0 {
                r /= 2;
            }
            rng.below(r.max(1))
        })
        .collect();
    let kernel = ScatterKernel::histogram(0, indices);
    let runs = sw_baselines(&kernel, range);
    for pair in runs.windows(2) {
        assert_eq!(pair[0].1, pair[1].1, "{} vs {}", pair[0].0, pair[1].0);
    }
    // And against the order-free functional oracle.
    let oracle = sa_sw::scatter_add_reference(&kernel, range);
    assert_eq!(runs[0].1, oracle, "{} vs oracle", runs[0].0);
}

/// Classify a uniform histogram run of `n` scatters into `range` words the
/// way the bottleneck engine does: merged counters through the metrics
/// registry, then `bottleneck_json` over the assembled document.
fn bottleneck_bound(range: u64, n: u64) -> String {
    use sa_telemetry::{bottleneck_json, Json, MetricsRegistry};
    let mut rng = Rng64::new(0xF11B_0001);
    let kernel = ScatterKernel::histogram(0, (0..n).map(|_| rng.below(range)).collect());
    let run = drive_scatter(&machine(), &kernel, false);
    let mut reg = MetricsRegistry::new();
    {
        let mut scope = reg.scope("run");
        run.node.record_metrics(&mut scope);
        scope.counter("cycles", run.drain_cycles);
    }
    let mut doc = Json::obj();
    doc.push("metrics", reg.to_json());
    let section = bottleneck_json(&doc).expect("occupancy counters present");
    section
        .get("run")
        .and_then(|r| r.get("bound"))
        .and_then(Json::as_str)
        .expect("classified")
        .to_owned()
}

#[test]
fn bottleneck_bound_flips_with_index_range_like_fig8() {
    // The differential behind Figures 7/8: a narrow index range keeps the
    // working set inside the combining store — throughput is limited by the
    // scatter-add units themselves — while a very wide range defeats
    // combining and turns the run into streaming DRAM traffic. The engine's
    // dominant-resource classification must flip accordingly.
    assert_eq!(bottleneck_bound(256, 4096), "comb_store");
    assert_eq!(bottleneck_bound(1 << 20, 4096), "dram_bandwidth");
}

/// The full v5 bottleneck section (not just the bound) for a histogram run
/// over `range`-wide indices under a given lane width and scheduler.
fn bottleneck_report(range: u64, n: u64, threads: usize, ff: bool) -> String {
    use sa_core::{drive_scatter_with, NodeMemSys};
    use sa_telemetry::{bottleneck_json, validate_bottleneck_json, Json, MetricsRegistry};
    let mut rng = Rng64::new(0xF11B_0002);
    let kernel = ScatterKernel::histogram(0, (0..n).map(|_| rng.below(range)).collect());
    let mut node = NodeMemSys::new(machine(), 0, false);
    node.set_fast_forward(ff);
    node.set_node_threads(threads);
    let run = drive_scatter_with(node, &kernel, false);
    let mut reg = MetricsRegistry::new();
    {
        let mut scope = reg.scope("run");
        run.node.record_metrics(&mut scope);
        scope.counter("cycles", run.drain_cycles);
    }
    let mut doc = Json::obj();
    doc.push("metrics", reg.to_json());
    let section = bottleneck_json(&doc).expect("occupancy counters present");
    validate_bottleneck_json(&section).expect("valid bottleneck section");
    section.to_string_pretty()
}

#[test]
fn epoch_lookahead_and_per_cycle_barrier_agree_on_bottleneck_reports() {
    // The epoch scheduler batches whole idle windows between two barriers
    // while fast-forward off re-arbitrates every cycle; both must attribute
    // the run to the same resource with the same occupancy shares, whether
    // the combining store or DRAM bandwidth is the limiter.
    for (range, n) in [(256u64, 4096u64), (1 << 20, 4096)] {
        let barrier = bottleneck_report(range, n, 4, false);
        let epoch = bottleneck_report(range, n, 4, true);
        assert_eq!(barrier, epoch, "range={range}");
        assert_eq!(
            barrier,
            bottleneck_report(range, n, 1, false),
            "range={range}: lane width changed the report"
        );
    }
}
