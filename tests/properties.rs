//! Property-based tests over the core invariants of the reproduction:
//! atomicity (every implementation computes the scalar-reference sums),
//! sort/scan algebra, value semantics, and multi-node equivalence.

use proptest::prelude::*;

use sa_core::{drive_scatter, scatter_reference, ScatterKernel, SensitivityRig};
use sa_multinode::{trace_reference, MultiNode};
use sa_sim::{
    combine, identity_bits, Addr, MachineConfig, NetworkConfig, ScalarKind, ScatterOp,
    SensitivityConfig,
};
use sa_sw::{
    bitonic_sort_pairs, color_assignment, coloring_result, inclusive_scan_add,
    privatization_result, segment_heads, segment_totals, segmented_scan_add, sort_pairs_by_key,
    sort_scan_result,
};

fn small_indices() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..64, 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The hardware unit inside the full node computes exactly the scalar
    /// reference for integer scatter-add, for any index multiset.
    #[test]
    fn hardware_matches_reference(indices in small_indices()) {
        let kernel = ScatterKernel::histogram(0, indices);
        let run = drive_scatter(&MachineConfig::merrimac(), &kernel, false);
        let expect: Vec<i64> = scatter_reference(&kernel, 64).iter().map(|&b| b as i64).collect();
        prop_assert_eq!(run.result_i64(64), expect);
    }

    /// Every software baseline agrees with the reference too.
    #[test]
    fn software_baselines_match_reference(indices in small_indices(), batch in 1usize..64, tile in 1usize..16) {
        let kernel = ScatterKernel::histogram(0, indices);
        let reference = scatter_reference(&kernel, 64);
        prop_assert_eq!(sort_scan_result(&kernel, 64, batch), reference.clone());
        prop_assert_eq!(privatization_result(&kernel, 64, tile), reference.clone());
        prop_assert_eq!(coloring_result(&kernel, 64), reference);
    }

    /// The sensitivity rig (single unit, uniform memory) is also exact, for
    /// any combining-store size, latency, and interval.
    #[test]
    fn rig_matches_reference(
        indices in small_indices(),
        cs in 1usize..32,
        fu in 1u32..8,
        lat in 1u32..64,
        interval in 1u32..8,
    ) {
        let rig = SensitivityRig::new(SensitivityConfig {
            cs_entries: cs,
            fu_latency: fu,
            mem_latency: lat,
            mem_interval: interval,
        });
        let r = rig.run_histogram(&indices, 64);
        let kernel = ScatterKernel::histogram(0, indices);
        let expect: Vec<i64> = scatter_reference(&kernel, 64).iter().map(|&b| b as i64).collect();
        prop_assert_eq!(r.bins, expect);
    }

    /// Fetch-and-add on one counter hands out a dense permutation of slots.
    #[test]
    fn fetch_add_slots_are_a_permutation(n in 1usize..64) {
        let kernel = ScatterKernel::histogram(0, vec![0; n]);
        let run = drive_scatter(&MachineConfig::merrimac(), &kernel, true);
        let mut slots: Vec<i64> = run.fetched.iter().map(|&(_, b)| b as i64).collect();
        slots.sort_unstable();
        prop_assert_eq!(slots, (0..n as i64).collect::<Vec<_>>());
    }

    /// Bitonic sort sorts and preserves the key/value multiset.
    #[test]
    fn bitonic_sorts(pairs in prop::collection::vec((0u64..1000, 0u64..1000), 0..200)) {
        let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let vals: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let (k, v, _) = sort_pairs_by_key(&keys, &vals);
        prop_assert!(k.windows(2).all(|w| w[0] <= w[1]));
        let mut got: Vec<(u64, u64)> = k.into_iter().zip(v).collect();
        let mut want = pairs.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Padded power-of-two sizes behave identically to exact ones.
    #[test]
    fn bitonic_power_of_two_direct(mut keys in prop::collection::vec(0u64..100, 1..9)) {
        keys.resize(keys.len().next_power_of_two(), u64::MAX);
        let mut vals = vec![0u64; keys.len()];
        let want = { let mut k = keys.clone(); k.sort_unstable(); k };
        bitonic_sort_pairs(&mut keys, &mut vals);
        prop_assert_eq!(keys, want);
    }

    /// Segmented scan's last element per segment equals the segment total,
    /// and segment totals sum to the global total.
    #[test]
    fn segmented_scan_totals(xs in prop::collection::vec(0u64..50, 1..200), nseg in 1usize..10) {
        let mut keys: Vec<u64> = (0..xs.len()).map(|i| (i * nseg / xs.len()) as u64).collect();
        keys.sort_unstable();
        let heads = segment_heads(&keys);
        let scanned = segmented_scan_add(&xs, &heads, ScalarKind::I64);
        let totals = segment_totals(&keys, &xs, ScalarKind::I64);
        let global: i64 = xs.iter().map(|&x| x as i64).sum();
        let sum_of_totals: i64 = totals.iter().map(|&(_, t)| t as i64).sum();
        prop_assert_eq!(global, sum_of_totals);
        // Inclusive scan over the whole array bounds every prefix.
        let inc = inclusive_scan_add(&xs, ScalarKind::I64);
        prop_assert_eq!(*inc.last().unwrap() as i64, global);
        let _ = scanned;
    }

    /// Coloring produces collision-free classes and minimal color count.
    #[test]
    fn coloring_is_valid(indices in small_indices()) {
        let colors = color_assignment(&indices);
        let n_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
        for c in 0..n_colors {
            let mut seen = std::collections::HashSet::new();
            for (i, &col) in colors.iter().enumerate() {
                if col == c {
                    prop_assert!(seen.insert(indices[i]), "collision in color {}", c);
                }
            }
        }
        // Minimality: max multiplicity equals the color count.
        let mut mult = std::collections::HashMap::new();
        for &i in &indices {
            *mult.entry(i).or_insert(0usize) += 1;
        }
        let max_mult = mult.values().copied().max().unwrap_or(0);
        prop_assert_eq!(n_colors, max_mult);
    }

    /// combine() is commutative for Add/Min/Max/Mul over integers, and
    /// identity elements are neutral.
    #[test]
    fn combine_algebra(a in any::<i64>(), b in any::<i64>()) {
        for op in [ScatterOp::Add, ScatterOp::Min, ScatterOp::Max, ScatterOp::Mul] {
            let ab = combine(a as u64, b as u64, ScalarKind::I64, op);
            let ba = combine(b as u64, a as u64, ScalarKind::I64, op);
            prop_assert_eq!(ab, ba, "{:?} not commutative", op);
            let id = identity_bits(ScalarKind::I64, op);
            prop_assert_eq!(combine(id, a as u64, ScalarKind::I64, op), a as u64);
        }
    }
}

proptest! {
    // Multi-node runs are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Direct and combining multi-node modes both compute the reference
    /// sums for arbitrary small traces, on 2 and 3 nodes.
    #[test]
    fn multinode_matches_reference(
        trace in prop::collection::vec(0u64..128, 1..150),
        nodes in 2usize..4,
        combining in any::<bool>(),
    ) {
        let values = vec![1.0f64; trace.len()];
        let mut mn = MultiNode::new(
            MachineConfig::merrimac(),
            nodes,
            NetworkConfig::low(),
            combining,
        );
        mn.run_trace(&trace, &values);
        for (&w, &expect) in &trace_reference(&trace, &values) {
            let got = f64::from_bits(mn.read_word(Addr::from_word_index(w)));
            prop_assert!((got - expect).abs() < 1e-9, "word {}: {} vs {}", w, got, expect);
        }
    }
}
