//! The `SessionSpec` wire-form contract: for any session a builder chain
//! can express, serializing to JSON and parsing back is lossless (down to
//! re-serialized bytes), the spec's fingerprint equals the builder chain's,
//! and the execution knobs (`--jobs` is sweep-only; `--step-threads`,
//! `--node-threads`, `--fast-forward` here) never reach the fingerprint —
//! the cache key names *what* is simulated, not *how fast*.

use proptest::prelude::*;

use sa_sim::{Rng64, ScalarKind, ScatterOp};
use sa_telemetry::Json;
use scatter_add_repro::{
    ExecSpec, MachineConfig, NetworkConfig, ScatterKernel, Session, SessionSpec, Topology, Workload,
};

/// One serialize→parse→serialize cycle, asserting structural equality and
/// byte identity (pretty and compact forms both).
fn assert_round_trip(spec: &SessionSpec) {
    let wire = spec.to_json();
    let text = wire.to_string_pretty();
    let parsed_doc = Json::parse(&text).expect("wire form parses as JSON");
    let parsed = SessionSpec::from_json(&parsed_doc).expect("wire form parses as a spec");
    assert_eq!(&parsed, spec, "parsed spec must equal the original");
    assert_eq!(
        parsed.to_json().to_string_pretty(),
        text,
        "re-serialized spec must be byte-identical"
    );
    assert_eq!(
        parsed.to_json().to_string_compact(),
        wire.to_string_compact()
    );
}

/// The spec's fingerprint and the builder chain's must agree, and exec-knob
/// variations must not move it.
fn assert_fingerprint_contract(spec: &SessionSpec) {
    let from_spec = spec.fingerprint().digest();
    let from_builder = spec
        .to_builder()
        .build()
        .expect("spec builds")
        .fingerprint()
        .digest();
    assert_eq!(
        from_spec, from_builder,
        "spec and builder-chain fingerprints must agree"
    );
    for exec in [
        ExecSpec::default(),
        ExecSpec {
            step_threads: 4,
            node_threads: 2,
            fast_forward: Some(false),
        },
        ExecSpec {
            step_threads: 1,
            node_threads: 8,
            fast_forward: Some(true),
        },
    ] {
        let mut variant = spec.clone();
        variant.exec = exec;
        assert_eq!(
            variant.fingerprint().digest(),
            from_spec,
            "execution knobs must not change the fingerprint"
        );
        assert_eq!(
            variant
                .to_builder()
                .build()
                .expect("variant builds")
                .fingerprint()
                .digest(),
            from_spec,
            "builder-chain fingerprint must ignore execution knobs too"
        );
    }
}

fn spmv_like_kernel(seed: u64, n: usize, range: u64) -> ScatterKernel {
    let mut rng = Rng64::new(seed);
    ScatterKernel {
        base_word: 8,
        indices: (0..n).map(|_| rng.next_u64() % range).collect(),
        // Raw bits straight from the generator: covers NaNs, infinities,
        // subnormals — the values the spec must carry losslessly.
        values: (0..n).map(|_| rng.next_u64()).collect(),
        kind: ScalarKind::F64,
        op: ScatterOp::Add,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn histogram_specs_round_trip(
        indices in prop::collection::vec(0u64..4096, 1..300),
        base_word in 0u64..64,
        fetch in any::<bool>(),
        probe_interval in prop::sample::select(vec![0u64, 128, 4096]),
    ) {
        let mut spec = SessionSpec::new(Workload::Histogram { base_word, indices });
        spec.fetch = fetch;
        spec.probe_interval = probe_interval;
        assert_round_trip(&spec);
        assert_fingerprint_contract(&spec);
    }

    #[test]
    fn scatter_specs_round_trip_raw_bits(
        seed in any::<u64>(),
        n in 1usize..200,
        op_pick in 0u8..4,
        int_kind in any::<bool>(),
    ) {
        let mut kernel = spmv_like_kernel(seed, n, 512);
        kernel.op = [ScatterOp::Add, ScatterOp::Min, ScatterOp::Max, ScatterOp::Mul]
            [op_pick as usize];
        if int_kind {
            kernel.kind = ScalarKind::I64;
        }
        let spec = SessionSpec::new(Workload::Scatter(kernel));
        assert_round_trip(&spec);
        // Min/Max/Mul over raw random bits still build and fingerprint.
        assert_fingerprint_contract(&spec);
    }

    #[test]
    fn multinode_specs_round_trip(
        seed in any::<u64>(),
        n in 1usize..200,
        nodes_pow in 0u32..4,
        combining in any::<bool>(),
        hypercube in any::<bool>(),
        high_bw in any::<bool>(),
    ) {
        let nodes = 1usize << nodes_pow;
        let mut rng = Rng64::new(seed);
        let trace: Vec<u64> = (0..n).map(|_| rng.next_u64() % 1024).collect();
        // Finite but awkward doubles (quarters), plus a signed range.
        let values: Vec<f64> = (0..n)
            .map(|_| (rng.next_u64() % 4001) as f64 / 4.0 - 500.0)
            .collect();
        let spec = SessionSpec::new(Workload::MultiNode {
            nodes,
            network: if high_bw { NetworkConfig::high() } else { NetworkConfig::low() },
            combining,
            topology: if hypercube { Topology::Hypercube } else { Topology::Flat },
            trace,
            values,
        });
        assert_round_trip(&spec);
        assert_fingerprint_contract(&spec);
    }

    #[test]
    fn config_and_faults_ride_the_wire(
        indices in prop::collection::vec(0u64..256, 1..100),
        cs_entries in 1usize..32,
        mshrs in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut cfg = MachineConfig::merrimac();
        cfg.sa.cs_entries = cs_entries;
        cfg.cache.mshrs_per_bank = mshrs;
        let mut spec = SessionSpec::new(Workload::Histogram { base_word: 0, indices });
        spec.config = cfg;
        spec.faults = Some(
            sa_faults::FaultPlan::parse(&format!(
                r#"{{"schema":"sa-faultplan","version":1,"seed":{seed},
                    "faults":[{{"kind":"ecc_single","period":7}}]}}"#
            ))
            .expect("valid plan"),
        );
        assert_round_trip(&spec);
        assert_fingerprint_contract(&spec);
    }
}

/// The session a spec builds runs identically to the session the builder
/// chain produces — not just the same fingerprint, the same report bytes.
#[test]
fn spec_sessions_run_like_builder_sessions() {
    let indices: Vec<u64> = (0..2000u64).map(|i| (i * 37 + 5) % 640).collect();
    let from_builder = Session::builder()
        .workload(Workload::Histogram {
            base_word: 0,
            indices: indices.clone(),
        })
        .step_threads(2)
        .build()
        .expect("valid")
        .run();
    let session = Session::builder()
        .workload(Workload::Histogram {
            base_word: 0,
            indices,
        })
        .step_threads(2)
        .build()
        .expect("valid");
    let spec = session.spec();
    let from_spec = spec.to_builder().build().expect("valid").run();
    assert_eq!(from_builder, from_spec);
    assert_eq!(
        from_builder.to_json().to_string_compact(),
        from_spec.to_json().to_string_compact(),
        "reports must serialize byte-identically"
    );
}
