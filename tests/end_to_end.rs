//! Integration tests spanning the whole workspace: every implementation of
//! scatter-add (hardware unit, sensitivity rig, sort+scan, privatization,
//! coloring, multi-node direct, multi-node combining) must compute the same
//! sums, and the timing relationships the paper reports must hold.

use sa_apps::histogram::{
    run_hw, run_privatization_default, run_sort_scan_default, HistogramInput,
};
use sa_core::{drive_scatter, ScatterKernel, SensitivityRig};
use sa_multinode::{trace_reference, MultiNode};
use sa_sim::{Addr, MachineConfig, NetworkConfig, Rng64, SensitivityConfig};
use sa_sw::{coloring_result, privatization_result, scatter_add_reference, sort_scan_result};

fn machine() -> MachineConfig {
    MachineConfig::merrimac()
}

#[test]
fn all_scatter_add_implementations_agree() {
    let mut rng = Rng64::new(0xE2E);
    let n = 1500;
    let range = 96u64;
    let indices: Vec<u64> = (0..n).map(|_| rng.below(range)).collect();
    let kernel = ScatterKernel::histogram(0, indices.clone());
    let reference = scatter_add_reference(&kernel, range as usize);
    let expect: Vec<i64> = reference.iter().map(|&b| b as i64).collect();

    // Hardware unit in the full node.
    let hw = drive_scatter(&machine(), &kernel, false);
    assert_eq!(hw.result_i64(range as usize), expect, "hardware unit");

    // Sensitivity rig (single unit, uniform memory).
    let rig = SensitivityRig::new(SensitivityConfig::default());
    let rig_run = rig.run_histogram(&indices, range);
    assert_eq!(rig_run.bins, expect, "sensitivity rig");

    // Software baselines (functional layer).
    assert_eq!(
        sort_scan_result(&kernel, range as usize, 256),
        reference,
        "sort + segmented scan"
    );
    assert_eq!(
        privatization_result(&kernel, range as usize, 32),
        reference,
        "privatization"
    );
    assert_eq!(
        coloring_result(&kernel, range as usize),
        reference,
        "coloring"
    );

    // Multi-node, both modes.
    let values = vec![1.0f64; indices.len()];
    for combining in [false, true] {
        let mut mn = MultiNode::new(machine(), 4, NetworkConfig::high(), combining);
        mn.run_trace(&indices, &values);
        for (bin, &count) in expect.iter().enumerate() {
            let got = f64::from_bits(mn.read_word(Addr::from_word_index(bin as u64)));
            assert_eq!(
                got as i64, count,
                "multi-node combining={combining} bin {bin}"
            );
        }
    }
}

#[test]
fn timed_histogram_variants_agree_and_rank_correctly() {
    let cfg = machine();
    let input = HistogramInput::uniform(3000, 1024, 0xE2E2);
    let hw = run_hw(&cfg, &input);
    let ss = run_sort_scan_default(&cfg, &input);
    let pv = run_privatization_default(&cfg, &input);
    let expect = input.reference();
    assert_eq!(hw.bins, expect);
    assert_eq!(ss.bins, expect);
    assert_eq!(pv.bins, expect);
    // The paper's ranking at a sizeable range: hardware < sort&scan <
    // privatization.
    assert!(hw.report.cycles < ss.report.cycles);
    assert!(ss.report.cycles < pv.report.cycles);
}

#[test]
fn reordering_never_changes_integer_sums() {
    // Stress the combining store with a mix of hot and cold addresses;
    // hardware reordering must still produce exact integer results.
    let mut rng = Rng64::new(0xE2E3);
    let mut indices = Vec::new();
    for _ in 0..2000 {
        // 50% traffic to 4 hot words, the rest over 4096.
        if rng.below(2) == 0 {
            indices.push(rng.below(4));
        } else {
            indices.push(rng.below(4096));
        }
    }
    let kernel = ScatterKernel::histogram(0, indices);
    let run = drive_scatter(&machine(), &kernel, false);
    let reference = scatter_add_reference(&kernel, 4096);
    let expect: Vec<i64> = reference.iter().map(|&b| b as i64).collect();
    assert_eq!(run.result_i64(4096), expect);
}

#[test]
fn multinode_direct_and_combining_agree_on_float_sums() {
    let mut rng = Rng64::new(0xE2E4);
    let n = 3000;
    let trace: Vec<u64> = (0..n).map(|_| rng.below(512)).collect();
    let values: Vec<f64> = (0..n).map(|_| (rng.below(16) as f64) * 0.125).collect();
    let reference = trace_reference(&trace, &values);

    for (nodes, combining) in [(2usize, false), (2, true), (8, false), (8, true)] {
        let mut mn = MultiNode::new(machine(), nodes, NetworkConfig::low(), combining);
        mn.run_trace(&trace, &values);
        for (&w, &expect) in &reference {
            let got = f64::from_bits(mn.read_word(Addr::from_word_index(w)));
            assert!(
                (got - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "nodes={nodes} combining={combining} word {w}: {got} vs {expect}"
            );
        }
    }
}

#[test]
fn parallel_stepper_combining_matches_single_node_oracle() {
    // The phase-parallel multinode stepper must leave memory in the same
    // state the oracle predicts: cache-combining with sum-back, replayed
    // under several worker counts, against single-node reference totals.
    let mut rng = Rng64::new(0xE2E6);
    let n = 2500;
    let trace: Vec<u64> = (0..n).map(|_| rng.below(384)).collect();
    let values: Vec<f64> = (0..n).map(|_| (rng.below(32) as f64) * 0.0625).collect();
    let reference = trace_reference(&trace, &values);

    for (nodes, combining, threads) in [(4usize, true, 2usize), (4, true, 8), (8, false, 4)] {
        let mut mn = MultiNode::new(machine(), nodes, NetworkConfig::low(), combining);
        let report = mn.run_trace_threads(&trace, &values, threads);
        assert_eq!(report.adds, n as u64);
        for (&w, &expect) in &reference {
            let got = f64::from_bits(mn.read_word(Addr::from_word_index(w)));
            assert!(
                (got - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "nodes={nodes} combining={combining} threads={threads} word {w}: \
                 {got} vs {expect}"
            );
        }
    }
}

#[test]
fn scatter_add_units_do_not_slow_down_non_scatter_code() {
    // §4.1: "codes that do not have a scatter-add will run unaffected on an
    // architecture with a hardware scatter-add capability." A pure
    // gather/kernel/store program must take the same cycles regardless of
    // the combining-store configuration.
    use sa_proc::{AccessPattern, Executor, StreamOp, StreamProgram};
    let mut prog = StreamProgram::new();
    let g = prog.add(
        StreamOp::gather(AccessPattern::Sequential {
            base_word: 0,
            n: 2048,
        }),
        &[],
    );
    let k = prog.add(StreamOp::kernel("work", 2048, 4, 4, 2), &[g]);
    prog.add(
        StreamOp::scatter(
            AccessPattern::Sequential {
                base_word: 1 << 16,
                n: 2048,
            },
            vec![0; 2048],
        ),
        &[k],
    );
    let mut cycles = Vec::new();
    for cs in [1usize, 8, 64] {
        let mut cfg = machine();
        cfg.sa.cs_entries = cs;
        let mut node = sa_core::NodeMemSys::new(cfg, 0, false);
        let r = Executor::new(cfg).run(&prog, &mut node);
        cycles.push(r.cycles);
    }
    assert_eq!(cycles[0], cycles[1]);
    assert_eq!(cycles[1], cycles[2]);
}

#[test]
fn spmv_three_ways_match() {
    use sa_apps::mesh::Mesh;
    use sa_apps::spmv::{run_csr, run_ebe_hw, run_ebe_sw_default, Csr, Ebe};
    let cfg = machine();
    let mesh = Mesh::generate(80, 12, 400, 0xE2E5);
    let x = mesh.test_vector(5);
    let csr = Csr::from_mesh(&mesh);
    let reference = Ebe::new(&mesh).multiply(&x);
    for (name, y) in [
        ("csr", run_csr(&cfg, &csr, &x).y),
        ("ebe-hw", run_ebe_hw(&cfg, &mesh, &x).y),
        ("ebe-sw", run_ebe_sw_default(&cfg, &mesh, &x).y),
    ] {
        for (i, (a, b)) in y.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-6 * (1.0 + b.abs()),
                "{name}: y[{i}] = {a}, expected {b}"
            );
        }
    }
}

#[test]
fn md_three_ways_match() {
    use sa_apps::md::{
        max_force_deviation, run_hw as md_hw, run_no_sa, run_sw_default, WaterSystem,
    };
    let cfg = machine();
    let sys = WaterSystem::generate(60, 0xE2E6);
    let reference = sys.reference_forces();
    assert!(max_force_deviation(&md_hw(&cfg, &sys).forces, &reference) < 1e-6);
    assert!(max_force_deviation(&run_sw_default(&cfg, &sys).forces, &reference) < 1e-6);
    assert!(max_force_deviation(&run_no_sa(&cfg, &sys).forces, &reference) < 1e-12);
}

#[test]
fn application_programs_fit_the_srf() {
    // The pipelined stage sizes of every application were chosen to keep
    // concurrently-live streams inside the 1 MB SRF; the executor verifies.
    let cfg = machine();
    let input = HistogramInput::uniform(20_000, 2048, 0xE2E7);
    assert!(!run_hw(&cfg, &input).report.srf_overflow());
    assert!(!run_sort_scan_default(&cfg, &input).report.srf_overflow());

    use sa_apps::mesh::Mesh;
    use sa_apps::spmv::{run_ebe_hw, Csr};
    let mesh = Mesh::generate(300, 20, 1600, 0xE2E8);
    let x = mesh.test_vector(1);
    let csr = Csr::from_mesh(&mesh);
    assert!(!sa_apps::spmv::run_csr(&cfg, &csr, &x).report.srf_overflow());
    assert!(!run_ebe_hw(&cfg, &mesh, &x).report.srf_overflow());

    use sa_apps::md::WaterSystem;
    let sys = WaterSystem::generate(100, 0xE2E9);
    assert!(!sa_apps::md::run_hw(&cfg, &sys).report.srf_overflow());
}
