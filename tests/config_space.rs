//! Configuration-space robustness: the machine must stay deadlock-free and
//! *exact* for any sensible combination of bank count, line size,
//! associativity, combining-store size, FU latency, MSHR file size, and
//! address-generator width — not just the Table 1 point. These tests drive
//! randomized machines with randomized workloads and assert the functional
//! invariant plus termination (the driver's cycle limit converts deadlock
//! into a panic).

use proptest::prelude::*;

use sa_core::{drive_scatter, scatter_reference, ScatterKernel};
use sa_sim::{CacheConfig, MachineConfig, Rng64};

/// A strategy over valid machine configurations around the Table 1 point.
fn machines() -> impl Strategy<Value = MachineConfig> {
    (
        prop::sample::select(vec![1usize, 2, 4, 8, 16]), // banks
        prop::sample::select(vec![16u64, 32, 64]),       // line bytes
        prop::sample::select(vec![1usize, 2, 4]),        // ways
        1usize..=16,                                     // cs entries
        1u32..=8,                                        // fu latency
        1usize..=8,                                      // mshrs
        1u32..=8,                                        // ag width
    )
        .prop_map(|(banks, line_bytes, ways, cs, fu, mshrs, ag_width)| {
            let mut cfg = MachineConfig::merrimac();
            // Shrink the cache so the geometry stays valid for every
            // combination and eviction paths actually trigger.
            let total_bytes = (banks as u64) * line_bytes * (ways as u64) * 16;
            cfg.cache = CacheConfig {
                banks,
                total_bytes,
                line_bytes,
                ways,
                mshrs_per_bank: mshrs,
                targets_per_mshr: 4,
                hit_latency: 2,
            };
            cfg.sa.cs_entries = cs;
            cfg.sa.fu_latency = fu;
            cfg.ag.width = ag_width;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exactness and termination across the configuration space.
    #[test]
    fn any_machine_computes_exact_sums(
        cfg in machines(),
        seed in 0u64..1_000,
        n in 1usize..400,
        range in 1u64..512,
    ) {
        let mut rng = Rng64::new(seed);
        let indices: Vec<u64> = (0..n).map(|_| rng.below(range)).collect();
        let kernel = ScatterKernel::histogram(0, indices);
        let run = drive_scatter(&cfg, &kernel, false);
        let expect: Vec<i64> = scatter_reference(&kernel, range as usize)
            .iter()
            .map(|&b| b as i64)
            .collect();
        prop_assert_eq!(run.result_i64(range as usize), expect);
        // Exactly one ack per request, no lost or duplicated work.
        prop_assert_eq!(run.stats.sa.accepted, n as u64);
        prop_assert_eq!(
            run.stats.sa.reads_issued + run.stats.sa.combined,
            n as u64,
            "every request either read memory or combined"
        );
        prop_assert_eq!(
            run.stats.sa.writes_issued + run.stats.sa.chained,
            n as u64,
            "every addition either wrote its sum or chained it onward"
        );
    }

    /// Fetch-op mode keeps its permutation guarantee everywhere in the
    /// configuration space.
    #[test]
    fn any_machine_fetch_add_is_a_permutation(
        cfg in machines(),
        n in 1usize..100,
    ) {
        let kernel = ScatterKernel::histogram(0, vec![0; n]);
        let run = drive_scatter(&cfg, &kernel, true);
        let mut slots: Vec<i64> = run.fetched.iter().map(|&(_, b)| b as i64).collect();
        slots.sort_unstable();
        prop_assert_eq!(slots, (0..n as i64).collect::<Vec<_>>());
    }

    /// Tiny pathological machines (1 bank, 1-entry store, 1-wide AG) still
    /// finish adversarial all-hot traffic.
    #[test]
    fn minimal_machine_survives_hot_traffic(n in 1usize..200) {
        let mut cfg = MachineConfig::merrimac();
        cfg.cache.banks = 1;
        cfg.cache.total_bytes = 1024;
        cfg.cache.ways = 1;
        cfg.cache.mshrs_per_bank = 1;
        cfg.cache.targets_per_mshr = 1;
        cfg.sa.cs_entries = 1;
        cfg.ag.width = 1;
        let kernel = ScatterKernel::histogram(0, vec![0; n]);
        let run = drive_scatter(&cfg, &kernel, false);
        prop_assert_eq!(run.result_i64(1)[0], n as i64);
    }
}

/// Mixed plain/scatter traffic to overlapping addresses must respect the
/// request stream's bank-order semantics for every machine shape.
#[test]
fn scatter_then_read_sees_all_additions_across_configs() {
    for banks in [1usize, 2, 8] {
        for cs in [1usize, 4, 8] {
            let mut cfg = MachineConfig::merrimac();
            cfg.cache.banks = banks;
            cfg.sa.cs_entries = cs;
            let mut rng = Rng64::new(banks as u64 * 31 + cs as u64);
            let indices: Vec<u64> = (0..300).map(|_| rng.below(16)).collect();
            let kernel = ScatterKernel::histogram(0, indices);
            let run = drive_scatter(&cfg, &kernel, false);
            let expect: Vec<i64> = scatter_reference(&kernel, 16)
                .iter()
                .map(|&b| b as i64)
                .collect();
            assert_eq!(run.result_i64(16), expect, "banks={banks} cs={cs}");
        }
    }
}
