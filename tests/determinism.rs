//! §3.3: "while the ordering of computation does not reflect program order,
//! it is consistent in the hardware and repeatable for each run of the
//! program." Every simulation in this workspace must be bit-for-bit
//! deterministic: same inputs → same cycle counts, same statistics, same
//! memory image.

use sa_apps::histogram::{run_hw, run_sort_scan_default, HistogramInput};
use sa_apps::md::WaterSystem;
use sa_apps::mesh::Mesh;
use sa_apps::spmv::{run_ebe_hw, Csr};
use sa_core::{drive_scatter, ScatterKernel, SensitivityRig};
use sa_multinode::MultiNode;
use sa_sim::{MachineConfig, NetworkConfig, Rng64, SensitivityConfig};

fn machine() -> MachineConfig {
    MachineConfig::merrimac()
}

#[test]
fn driver_runs_repeat_exactly() {
    let mut rng = Rng64::new(1);
    let kernel = ScatterKernel::histogram(0, (0..800).map(|_| rng.below(128)).collect());
    let a = drive_scatter(&machine(), &kernel, false);
    let b = drive_scatter(&machine(), &kernel, false);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.drain_cycles, b.drain_cycles);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.result_i64(128), b.result_i64(128));
}

#[test]
fn rig_runs_repeat_exactly() {
    let mut rng = Rng64::new(2);
    let indices: Vec<u64> = (0..512).map(|_| rng.below(1 << 14)).collect();
    let rig = SensitivityRig::new(SensitivityConfig::default());
    let a = rig.run_histogram(&indices, 1 << 14);
    let b = rig.run_histogram(&indices, 1 << 14);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.sa, b.sa);
    assert_eq!(a.bins, b.bins);
}

#[test]
fn app_runs_repeat_exactly() {
    let cfg = machine();
    let input = HistogramInput::uniform(1200, 512, 3);
    assert_eq!(
        run_hw(&cfg, &input).report.cycles,
        run_hw(&cfg, &input).report.cycles
    );
    assert_eq!(
        run_sort_scan_default(&cfg, &input).report.cycles,
        run_sort_scan_default(&cfg, &input).report.cycles
    );
}

#[test]
fn spmv_and_md_repeat_exactly() {
    let cfg = machine();
    let mesh = Mesh::generate(60, 10, 300, 4);
    let x = mesh.test_vector(5);
    let _ = Csr::from_mesh(&mesh); // assembly itself is deterministic
    assert_eq!(
        run_ebe_hw(&cfg, &mesh, &x).report.cycles,
        run_ebe_hw(&cfg, &mesh, &x).report.cycles
    );
    let sys = WaterSystem::generate(40, 6);
    assert_eq!(
        sa_apps::md::run_hw(&cfg, &sys).report.cycles,
        sa_apps::md::run_hw(&cfg, &sys).report.cycles
    );
}

#[test]
fn multinode_repeats_exactly() {
    let mut rng = Rng64::new(7);
    let trace: Vec<u64> = (0..2000).map(|_| rng.below(256)).collect();
    let values = vec![1.0; trace.len()];
    for combining in [false, true] {
        let a = MultiNode::new(machine(), 4, NetworkConfig::low(), combining)
            .run_trace(&trace, &values);
        let b = MultiNode::new(machine(), 4, NetworkConfig::low(), combining)
            .run_trace(&trace, &values);
        assert_eq!(a.cycles, b.cycles, "combining={combining}");
        assert_eq!(a.sum_back_lines, b.sum_back_lines);
    }
}

#[test]
fn float_reduction_order_is_stable_across_runs() {
    // Floating-point sums depend on hardware ordering; determinism means
    // the bits are nevertheless identical run to run.
    let mut rng = Rng64::new(8);
    let n = 600;
    let indices: Vec<u64> = (0..n).map(|_| rng.below(16)).collect();
    let values: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    let kernel = ScatterKernel::superposition(0, indices, &values);
    let a = drive_scatter(&machine(), &kernel, false);
    let b = drive_scatter(&machine(), &kernel, false);
    let bits_a: Vec<u64> = a.result_f64(16).iter().map(|v| v.to_bits()).collect();
    let bits_b: Vec<u64> = b.result_f64(16).iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits_a, bits_b, "bitwise identical float results");
}
