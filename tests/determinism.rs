//! §3.3: "while the ordering of computation does not reflect program order,
//! it is consistent in the hardware and repeatable for each run of the
//! program." Every simulation in this workspace must be bit-for-bit
//! deterministic: same inputs → same cycle counts, same statistics, same
//! memory image.

use proptest::prelude::*;
use sa_apps::histogram::{run_hw, run_sort_scan_default, HistogramInput};
use sa_apps::md::WaterSystem;
use sa_apps::mesh::Mesh;
use sa_apps::spmv::{run_ebe_hw, Csr, Ebe};
use sa_core::{
    drive_scatter, drive_scatter_probed, drive_scatter_with, NodeMemSys, ScatterKernel,
    SensitivityRig,
};
use sa_multinode::{MultiNode, Topology, TraceReport};
use sa_sim::{MachineConfig, NetworkConfig, Rng64, SensitivityConfig};
use sa_telemetry::{validate_probe_json, HostProfiler, Introspect, Json, ProbeRecorder};

fn machine() -> MachineConfig {
    MachineConfig::merrimac()
}

#[test]
fn driver_runs_repeat_exactly() {
    let mut rng = Rng64::new(1);
    let kernel = ScatterKernel::histogram(0, (0..800).map(|_| rng.below(128)).collect());
    let a = drive_scatter(&machine(), &kernel, false);
    let b = drive_scatter(&machine(), &kernel, false);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.drain_cycles, b.drain_cycles);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.result_i64(128), b.result_i64(128));
}

#[test]
fn rig_runs_repeat_exactly() {
    let mut rng = Rng64::new(2);
    let indices: Vec<u64> = (0..512).map(|_| rng.below(1 << 14)).collect();
    let rig = SensitivityRig::new(SensitivityConfig::default());
    let a = rig.run_histogram(&indices, 1 << 14);
    let b = rig.run_histogram(&indices, 1 << 14);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.sa, b.sa);
    assert_eq!(a.bins, b.bins);
}

#[test]
fn app_runs_repeat_exactly() {
    let cfg = machine();
    let input = HistogramInput::uniform(1200, 512, 3);
    assert_eq!(
        run_hw(&cfg, &input).report.cycles,
        run_hw(&cfg, &input).report.cycles
    );
    assert_eq!(
        run_sort_scan_default(&cfg, &input).report.cycles,
        run_sort_scan_default(&cfg, &input).report.cycles
    );
}

#[test]
fn spmv_and_md_repeat_exactly() {
    let cfg = machine();
    let mesh = Mesh::generate(60, 10, 300, 4);
    let x = mesh.test_vector(5);
    let _ = Csr::from_mesh(&mesh); // assembly itself is deterministic
    assert_eq!(
        run_ebe_hw(&cfg, &mesh, &x).report.cycles,
        run_ebe_hw(&cfg, &mesh, &x).report.cycles
    );
    let sys = WaterSystem::generate(40, 6);
    assert_eq!(
        sa_apps::md::run_hw(&cfg, &sys).report.cycles,
        sa_apps::md::run_hw(&cfg, &sys).report.cycles
    );
}

#[test]
fn multinode_repeats_exactly() {
    let mut rng = Rng64::new(7);
    let trace: Vec<u64> = (0..2000).map(|_| rng.below(256)).collect();
    let values = vec![1.0; trace.len()];
    for combining in [false, true] {
        let a = MultiNode::new(machine(), 4, NetworkConfig::low(), combining)
            .run_trace(&trace, &values);
        let b = MultiNode::new(machine(), 4, NetworkConfig::low(), combining)
            .run_trace(&trace, &values);
        assert_eq!(a.cycles, b.cycles, "combining={combining}");
        assert_eq!(a.sum_back_lines, b.sum_back_lines);
    }
}

/// Render a trace report exactly the way `--stats-json` does: every counter
/// through the metrics registry, plus the request-latency document.
fn stats_json(r: &TraceReport) -> String {
    let mut reg = sa_telemetry::MetricsRegistry::new();
    r.record_metrics(&mut reg.scope("multinode"));
    format!(
        "{}\n{}",
        reg.to_json().to_string_pretty(),
        r.req_trace.latency_json().to_string_pretty()
    )
}

#[test]
fn multinode_parallel_stepping_stats_json_is_byte_identical() {
    // The determinism contract of `docs/PARALLELISM.md`: the phase-parallel
    // stepper must produce the same sa-stats v2 bytes as serial stepping for
    // *any* worker count — 1, 2, and more workers than nodes.
    let mut rng = Rng64::new(9);
    let trace: Vec<u64> = (0..4000).map(|_| rng.below(192)).collect();
    let values: Vec<f64> = (0..trace.len()).map(|_| rng.range_f64(-2.0, 2.0)).collect();
    let mut cfg = machine();
    cfg.req_sample = 16; // exercise the tracer merge path too
    for (combining, topology) in [(false, Topology::Flat), (true, Topology::Hypercube)] {
        let serial = MultiNode::with_topology(cfg, 4, NetworkConfig::low(), combining, topology)
            .run_trace(&trace, &values);
        let expect = stats_json(&serial);
        for threads in [1usize, 2, 4, 16] {
            let parallel =
                MultiNode::with_topology(cfg, 4, NetworkConfig::low(), combining, topology)
                    .run_trace_threads(&trace, &values, threads);
            assert_eq!(
                stats_json(&parallel),
                expect,
                "combining={combining} threads={threads}: stats bytes diverged"
            );
        }
    }
}

#[test]
fn rig_sweep_is_thread_count_invariant() {
    let mut rng = Rng64::new(10);
    let indices: Vec<u64> = (0..512).map(|_| rng.below(4096)).collect();
    let configs: Vec<SensitivityConfig> = [2usize, 8, 64]
        .iter()
        .map(|&cs| SensitivityConfig {
            cs_entries: cs,
            ..SensitivityConfig::default()
        })
        .collect();
    let serial = SensitivityRig::run_histogram_sweep(&configs, &indices, 4096, 1);
    for threads in [2usize, 8] {
        let parallel = SensitivityRig::run_histogram_sweep(&configs, &indices, 4096, threads);
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[derive(Clone, Copy, Debug)]
enum FfWorkload {
    Histogram,
    Spmv,
    Md,
}

fn ff_trace(workload: FfWorkload, seed: u64) -> Vec<u64> {
    match workload {
        FfWorkload::Histogram => {
            let mut rng = Rng64::new(seed);
            (0..1024).map(|_| rng.below(256)).collect()
        }
        FfWorkload::Spmv => Ebe::new(&Mesh::generate(40, 8, 160, seed)).scatter_trace(),
        FfWorkload::Md => WaterSystem::generate(24, seed).scatter_trace(),
    }
}

/// Render a single-node run the way `--stats-json` does (counters through
/// the registry plus the request-latency document), so byte comparison
/// covers exactly what ships in the stats file.
fn run_stats_json(run: &sa_core::RunResult) -> String {
    let mut reg = sa_telemetry::MetricsRegistry::new();
    {
        let mut scope = reg.scope("run");
        run.node.record_metrics(&mut scope);
        scope.counter("cycles", run.cycles);
        scope.counter("drain_cycles", run.drain_cycles);
        scope.counter("skipped_cycles", run.skipped_cycles);
    }
    format!(
        "{}\n{}",
        reg.to_json().to_string_pretty(),
        run.node.req_tracer().latency_json().to_string_pretty()
    )
}

/// Drop the `skipped_cycles` counter — the one line that legitimately
/// differs between fast-forward modes (CI strips it the same way).
fn strip_skipped(doc: &str) -> String {
    doc.lines()
        .filter(|l| !l.contains("skipped_cycles"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Schema-check every `sa-probe` line and drop its top-level
/// `skipped_cycles` field — the probe-line analogue of [`strip_skipped`].
fn strip_probe_skipped(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|l| {
            let mut doc = Json::parse(l).expect("probe line parses");
            validate_probe_json(&doc).expect("valid sa-probe snapshot");
            if let Json::Obj(pairs) = &mut doc {
                pairs.retain(|(k, _)| k != "skipped_cycles");
            }
            doc.to_string_compact()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The event-horizon scheduler contract: for random histogram, SpMV and
    /// MD workloads over varying combining-store sizes and both scatter-add
    /// modes, the rendered sa-stats bytes with fast-forward ON equal the
    /// bytes with it OFF (modulo the skipped-cycle counter itself), and the
    /// OFF run never skips.
    #[test]
    fn fast_forward_stats_json_is_byte_identical(
        workload in prop::sample::select(vec![
            FfWorkload::Histogram,
            FfWorkload::Spmv,
            FfWorkload::Md,
        ]),
        fetch in any::<bool>(),
        cs_entries in prop::sample::select(vec![4usize, 8, 16]),
        seed in 1u64..32,
    ) {
        let mut cfg = machine();
        cfg.sa.cs_entries = cs_entries;
        cfg.req_sample = 32;
        let kernel = ScatterKernel::histogram(0, ff_trace(workload, seed));
        let run_mode = |ff: bool| {
            let mut node = NodeMemSys::new(cfg, 0, false);
            node.set_fast_forward(ff);
            let run = drive_scatter_with(node, &kernel, fetch);
            (run_stats_json(&run), run.skipped_cycles)
        };
        let (on, _skipped_on) = run_mode(true);
        let (off, skipped_off) = run_mode(false);
        prop_assert_eq!(skipped_off, 0, "ff off must not skip");
        prop_assert_eq!(strip_skipped(&on), strip_skipped(&off));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The probe-cadence determinism contract (docs/OBSERVABILITY.md): at a
    /// fixed snapshot interval, a single-node run renders byte-identical
    /// `sa-probe` lines with fast-forward on and off — the recorder clamps
    /// the event horizon so every due cycle is actually ticked — modulo
    /// each line's own `skipped_cycles` field. The host profiler is enabled
    /// on one side only: its wall-clock tallies must never reach any
    /// determinism-compared byte (stats or probe lines).
    #[test]
    fn probe_snapshots_are_fast_forward_invariant(
        workload in prop::sample::select(vec![
            FfWorkload::Histogram,
            FfWorkload::Spmv,
            FfWorkload::Md,
        ]),
        interval in prop::sample::select(vec![32u64, 128]),
        seed in 1u64..24,
    ) {
        let mut cfg = machine();
        cfg.req_sample = 32;
        let kernel = ScatterKernel::histogram(0, ff_trace(workload, seed));
        let run_mode = |ff: bool, profile: bool| {
            let mut node = NodeMemSys::new(cfg, 0, false);
            node.set_fast_forward(ff);
            let mut probe = Introspect::off();
            probe.recorder = ProbeRecorder::every(interval);
            probe.profiler = HostProfiler::enabled(profile);
            let run = drive_scatter_probed(node, &kernel, false, &mut probe);
            (run_stats_json(&run), probe.recorder.take_lines())
        };
        let (stats_on, lines_on) = run_mode(true, false);
        let (stats_off, lines_off) = run_mode(false, true);
        prop_assert!(!lines_on.is_empty(), "cadence must fire at least once");
        prop_assert_eq!(strip_skipped(&stats_on), strip_skipped(&stats_off));
        prop_assert_eq!(
            strip_probe_skipped(&lines_on),
            strip_probe_skipped(&lines_off)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The multinode flavour of the probe-cadence contract: the `sa-probe`
    /// lines of a trace replay are byte-identical (modulo `skipped_cycles`)
    /// across phase-parallel step-thread counts and fast-forward modes —
    /// both schedulers snapshot at the same point in the cycle, after every
    /// port is re-attached and before the sync phase.
    #[test]
    fn multinode_probe_snapshots_are_schedule_invariant(
        trace_seed in 1u64..16,
        combining in any::<bool>(),
        // The 2000-reference replay runs ~450 cycles, so both cadences fire.
        interval in prop::sample::select(vec![64u64, 192]),
    ) {
        let mut rng = Rng64::new(trace_seed);
        let trace: Vec<u64> = (0..2000).map(|_| rng.below(256)).collect();
        let values = vec![1.0; trace.len()];
        let run = |threads: usize, ff: bool| {
            let mut mn = MultiNode::new(machine(), 4, NetworkConfig::low(), combining);
            mn.set_fast_forward(ff);
            let mut probe = Introspect::off();
            probe.recorder = ProbeRecorder::every(interval).with_label("mn");
            let r = mn.run_trace_threads_probed(&trace, &values, threads, &mut probe);
            (stats_json(&r), probe.recorder.take_lines())
        };
        let (base_stats, base_lines) = run(1, false);
        prop_assert!(!base_lines.is_empty(), "cadence must fire at least once");
        for (threads, ff) in [(2usize, false), (1, true), (4, true)] {
            let (stats, lines) = run(threads, ff);
            prop_assert_eq!(
                strip_skipped(&stats),
                strip_skipped(&base_stats),
                "threads={} ff={}: stats bytes diverged",
                threads,
                ff
            );
            prop_assert_eq!(
                strip_probe_skipped(&lines),
                strip_probe_skipped(&base_lines),
                "threads={} ff={}: probe lines diverged",
                threads,
                ff
            );
        }
    }
}

/// Render the v5 `bottleneck` section for a multinode run, validated.
fn bottleneck_section(r: &TraceReport) -> String {
    let mut reg = sa_telemetry::MetricsRegistry::new();
    r.record_metrics(&mut reg.scope("multinode"));
    let mut doc = Json::obj();
    doc.push("metrics", reg.to_json());
    let section = sa_telemetry::bottleneck_json(&doc).expect("occupancy counters present");
    sa_telemetry::validate_bottleneck_json(&section).expect("valid bottleneck section");
    section.to_string_pretty()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The bottleneck attribution contract: the section is derived purely
    /// from deterministic counters — including the occupancy accounting the
    /// skip path folds in bulk — so its bytes are identical across
    /// step-thread counts and fast-forward modes, with no stripping at all
    /// (`skipped_cycles` never feeds the report).
    #[test]
    fn bottleneck_section_is_schedule_invariant(
        trace_seed in 1u64..12,
        combining in any::<bool>(),
    ) {
        let mut rng = Rng64::new(trace_seed);
        let trace: Vec<u64> = (0..2200).map(|_| rng.below(192)).collect();
        let values = vec![1.0; trace.len()];
        let run = |threads: usize, ff: bool| {
            let mut mn = MultiNode::new(machine(), 4, NetworkConfig::low(), combining);
            mn.set_fast_forward(ff);
            bottleneck_section(&mn.run_trace_threads(&trace, &values, threads))
        };
        let base = run(1, false);
        for (threads, ff) in [(2usize, false), (1, true), (4, true)] {
            prop_assert_eq!(
                run(threads, ff),
                base.clone(),
                "threads={} ff={}: bottleneck bytes diverged",
                threads,
                ff
            );
        }
    }
}

/// Occupancy counters for each component family of a run scope:
/// `(busy, blocked, idle)` summed over the scope's merged counters.
fn occ_triple(json: &str, family: &str) -> (u64, u64, u64) {
    let field = |suffix: &str| {
        json.lines()
            .find(|l| l.contains(&format!("\"run.{family}.occ_{suffix}\"")))
            .and_then(|l| {
                l.split(':')
                    .nth(1)?
                    .trim()
                    .trim_end_matches(',')
                    .parse::<u64>()
                    .ok()
            })
            .unwrap_or_else(|| panic!("missing run.{family}.occ_{suffix} in stats"))
    };
    (field("busy"), field("blocked"), field("idle"))
}

#[test]
fn occupancy_accounting_covers_every_cycle_under_fast_forward() {
    // The per-component accounting invariant behind the bottleneck engine:
    // busy + blocked + idle must equal the cycles the component actually
    // existed for — identical across fast-forward modes (the skip path
    // folds whole windows with the same classification the tick path would
    // have produced cycle by cycle), and identical across components of
    // one node (they all live the same span).
    let mut rng = Rng64::new(23);
    let cfg = machine();
    // Wide range: misses stall on DRAM, so provably-idle windows exist for
    // the scheduler to skip while every family still turns busy.
    let kernel = ScatterKernel::histogram(0, (0..1500).map(|_| rng.below(1 << 18)).collect());
    let elapsed_for = |ff: bool| {
        let mut node = NodeMemSys::new(cfg, 0, false);
        node.set_fast_forward(ff);
        let run = drive_scatter_with(node, &kernel, false);
        let json = run_stats_json(&run);
        let mut elapsed = Vec::new();
        for family in ["sa", "cache", "dram"] {
            let (busy, blocked, idle) = occ_triple(&json, family);
            assert!(busy > 0, "{family}: never busy in a miss-heavy run");
            elapsed.push(busy + blocked + idle);
        }
        (elapsed, run.skipped_cycles)
    };
    let (on, skipped_on) = elapsed_for(true);
    let (off, skipped_off) = elapsed_for(false);
    assert!(skipped_on > 0, "miss-heavy run must find skippable windows");
    assert_eq!(skipped_off, 0);
    assert_eq!(on, off, "elapsed accounting differs across fast-forward");
    // All families are per-instance merges over the same span: each
    // instance's elapsed is span cycles, so family totals are
    // instances x span.
    let span = |total: u64, instances: u64| {
        assert_eq!(total % instances, 0);
        total / instances
    };
    let banks = cfg.cache.banks as u64;
    let chans = cfg.dram.channels as u64;
    assert_eq!(span(on[0], banks), span(on[1], banks));
    assert_eq!(span(on[0], banks), span(on[2], chans));
}

/// A recoverable fault plan covering every site, parameterized by seed.
fn fault_plan(seed: u64) -> sa_faults::FaultPlan {
    sa_faults::FaultPlan::parse(&format!(
        r#"{{"schema":"sa-faultplan","version":1,"seed":{seed},"cs_timeout":48,"faults":[
            {{"kind":"net_nack","period":5,"max":40}},
            {{"kind":"net_drop","period":8,"max":20}},
            {{"kind":"ecc_single","period":7}},
            {{"kind":"cs_stall","cycles":24,"period":11,"max":25}}
        ]}}"#
    ))
    .expect("valid plan")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The resilience zero-cost contract: installing an *empty* fault plan
    /// renders the exact same sa-stats bytes as installing none at all, for
    /// random workloads and machine shapes.
    #[test]
    fn empty_fault_plan_stats_json_is_byte_identical(
        workload in prop::sample::select(vec![
            FfWorkload::Histogram,
            FfWorkload::Spmv,
            FfWorkload::Md,
        ]),
        cs_entries in prop::sample::select(vec![4usize, 16]),
        seed in 1u64..32,
    ) {
        let mut cfg = machine();
        cfg.sa.cs_entries = cs_entries;
        let kernel = ScatterKernel::histogram(0, ff_trace(workload, seed));
        let run_plan = |plan: Option<sa_faults::FaultPlan>| {
            let mut node = NodeMemSys::new(cfg, 0, false);
            if let Some(p) = &plan {
                node.set_fault_plan(p);
            }
            run_stats_json(&drive_scatter_with(node, &kernel, false))
        };
        let none = run_plan(None);
        let empty = run_plan(Some(sa_faults::FaultPlan::empty()));
        prop_assert_eq!(none, empty);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The fault-determinism contract: under a fixed plan and seed, the
    /// multinode run — injected faults, recovery, statistics, and memory
    /// image — is identical across worker-thread counts and fast-forward
    /// modes, and the recovered results match the fault-free bits.
    #[test]
    fn faulty_runs_are_schedule_invariant(
        plan_seed in 1u64..64,
        trace_seed in 1u64..16,
        combining in any::<bool>(),
    ) {
        let mut rng = Rng64::new(trace_seed);
        let trace: Vec<u64> = (0..2500).map(|_| rng.below(256)).collect();
        // Dyadic values (multiples of 1/8, bounded sums) add exactly, so the
        // result bits cannot depend on the order recovery replays additions
        // in — which is precisely what makes "recoverable faults leave the
        // answer bit-identical" a testable claim for floating point.
        let values: Vec<f64> = (0..trace.len())
            .map(|_| (rng.below(64) as f64 - 32.0) * 0.125)
            .collect();
        let plan = fault_plan(plan_seed);
        let run = |faulty: bool, threads: usize, ff: bool| {
            let mut mn = MultiNode::new(machine(), 4, NetworkConfig::low(), combining);
            mn.set_fast_forward(ff);
            if faulty {
                mn.set_fault_plan(&plan);
            }
            let r = mn.run_trace_threads(&trace, &values, threads);
            let image: Vec<u64> = (0..256)
                .map(|w| mn.read_word(sa_sim::Addr::from_word_index(w)))
                .collect();
            (r, image)
        };
        let (clean, clean_image) = run(false, 1, false);
        prop_assert!(clean.resilience.is_zero());
        let (base, base_image) = run(true, 1, false);
        prop_assert_eq!(base.resilience.ecc_uncorrected, 0, "plan is recoverable");
        prop_assert_eq!(
            &base_image, &clean_image,
            "recovered results must match fault-free bits"
        );
        for (threads, ff) in [(3usize, false), (1, true), (4, true)] {
            let (r, image) = run(true, threads, ff);
            prop_assert_eq!(&image, &base_image, "threads={} ff={}", threads, ff);
            prop_assert_eq!(r.cycles, base.cycles);
            prop_assert_eq!(r.resilience, base.resilience);
            prop_assert_eq!(&r.node_stats, &base.node_stats);
        }
    }
}

#[test]
fn float_reduction_order_is_stable_across_runs() {
    // Floating-point sums depend on hardware ordering; determinism means
    // the bits are nevertheless identical run to run.
    let mut rng = Rng64::new(8);
    let n = 600;
    let indices: Vec<u64> = (0..n).map(|_| rng.below(16)).collect();
    let values: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    let kernel = ScatterKernel::superposition(0, indices, &values);
    let a = drive_scatter(&machine(), &kernel, false);
    let b = drive_scatter(&machine(), &kernel, false);
    let bits_a: Vec<u64> = a.result_f64(16).iter().map(|v| v.to_bits()).collect();
    let bits_b: Vec<u64> = b.result_f64(16).iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits_a, bits_b, "bitwise identical float results");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The intra-node flavour of the fault-determinism contract: under a
    /// fixed recoverable plan, a single node renders the same sa-stats
    /// bytes and memory image at every bank-lane width and fast-forward
    /// mode — fault sites are addressed by component, not by stepping
    /// order, so the worker pool cannot perturb injection or recovery.
    #[test]
    fn faulty_single_node_runs_are_node_thread_invariant(
        workload in prop::sample::select(vec![
            FfWorkload::Histogram,
            FfWorkload::Spmv,
            FfWorkload::Md,
        ]),
        plan_seed in 1u64..48,
        seed in 1u64..12,
    ) {
        let cfg = machine();
        let kernel = ScatterKernel::histogram(0, ff_trace(workload, seed));
        let plan = fault_plan(plan_seed);
        let run = |threads: usize, ff: bool| {
            let mut node = NodeMemSys::new(cfg, 0, false);
            node.set_fast_forward(ff);
            node.set_node_threads(threads);
            node.set_fault_plan(&plan);
            let r = drive_scatter_with(node, &kernel, false);
            (strip_skipped(&run_stats_json(&r)), r.result_i64(256))
        };
        let (base_stats, base_image) = run(1, false);
        for (threads, ff) in [(4usize, false), (1, true), (4, true)] {
            let (stats, image) = run(threads, ff);
            prop_assert_eq!(stats, base_stats.clone(), "threads={} ff={}", threads, ff);
            prop_assert_eq!(image, base_image.clone(), "threads={} ff={}", threads, ff);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The intra-node flavour of the occupancy-invariance contract: the
    /// per-family `(busy, blocked, idle)` triples that feed the bottleneck
    /// engine are identical across bank-lane widths and fast-forward modes
    /// — the epoch scheduler folds occupancy in bulk with exactly the
    /// classification the per-cycle barrier produces, at narrow (combining
    /// store bound) and wide (DRAM bound) index ranges alike.
    #[test]
    fn occupancy_triples_are_node_thread_invariant(
        range_bits in prop::sample::select(vec![8u32, 18]),
        seed in 1u64..12,
    ) {
        let mut rng = Rng64::new(seed);
        let kernel = ScatterKernel::histogram(
            0,
            (0..1200).map(|_| rng.below(1 << range_bits)).collect(),
        );
        let run = |threads: usize, ff: bool| {
            let mut node = NodeMemSys::new(machine(), 0, false);
            node.set_fast_forward(ff);
            node.set_node_threads(threads);
            let json = run_stats_json(&drive_scatter_with(node, &kernel, false));
            ["sa", "cache", "dram"].map(|f| occ_triple(&json, f))
        };
        let base = run(1, false);
        for (threads, ff) in [(2usize, false), (4, false), (4, true)] {
            prop_assert_eq!(run(threads, ff), base, "threads={} ff={}", threads, ff);
        }
    }
}
