//! Intra-node parallel stepping is an implementation detail, not a model
//! change: the bank-lane worker pool and the epoch-lookahead scheduler must
//! render byte-identical sa-stats documents and `sa-probe` streams at every
//! `--node-threads` width, with fast-forward on or off. The crossbar stays
//! the one serialization point (§4 of the paper: banks, channels and
//! scatter-add units otherwise advance independently), so any divergence
//! here is a scheduling bug, not a tolerance question.

use proptest::prelude::*;
use sa_apps::md::WaterSystem;
use sa_apps::mesh::Mesh;
use sa_apps::spmv::Ebe;
use sa_core::{drive_scatter_probed, drive_scatter_with, NodeMemSys, ScatterKernel};
use sa_sim::{MachineConfig, Rng64};
use sa_telemetry::{validate_probe_json, HostProfiler, Introspect, Json, ProbeRecorder};

fn machine() -> MachineConfig {
    MachineConfig::merrimac()
}

#[derive(Clone, Copy, Debug)]
enum Workload {
    Histogram,
    Spmv,
    Md,
}

fn scatter_trace(workload: Workload, seed: u64) -> Vec<u64> {
    match workload {
        Workload::Histogram => {
            let mut rng = Rng64::new(seed);
            (0..768).map(|_| rng.below(192)).collect()
        }
        Workload::Spmv => Ebe::new(&Mesh::generate(32, 8, 128, seed)).scatter_trace(),
        Workload::Md => WaterSystem::generate(20, seed).scatter_trace(),
    }
}

/// Render a run the way `--stats-json` does (counters through the registry
/// plus the request-latency document), so the byte comparison covers exactly
/// what ships in the stats file.
fn run_stats_json(run: &sa_core::RunResult) -> String {
    let mut reg = sa_telemetry::MetricsRegistry::new();
    {
        let mut scope = reg.scope("run");
        run.node.record_metrics(&mut scope);
        scope.counter("cycles", run.cycles);
        scope.counter("drain_cycles", run.drain_cycles);
        scope.counter("skipped_cycles", run.skipped_cycles);
    }
    format!(
        "{}\n{}",
        reg.to_json().to_string_pretty(),
        run.node.req_tracer().latency_json().to_string_pretty()
    )
}

/// Drop the `skipped_cycles` counter — the one line that legitimately
/// differs across fast-forward modes (CI strips it the same way).
fn strip_skipped(doc: &str) -> String {
    doc.lines()
        .filter(|l| !l.contains("skipped_cycles"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Schema-check every `sa-probe` line and drop its top-level
/// `skipped_cycles` field — the probe-line analogue of [`strip_skipped`].
fn strip_probe_skipped(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|l| {
            let mut doc = Json::parse(l).expect("probe line parses");
            validate_probe_json(&doc).expect("valid sa-probe snapshot");
            if let Json::Obj(pairs) = &mut doc {
                pairs.retain(|(k, _)| k != "skipped_cycles");
            }
            doc.to_string_compact()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole contract: for random histogram, SpMV and MD workloads,
    /// the rendered sa-stats bytes are identical at every node-thread width
    /// and in both fast-forward modes (modulo the skipped-cycle counter).
    /// Width 1 with fast-forward off is the reference serial scheduler; the
    /// fetched-line log and the final memory image must match it too.
    #[test]
    fn node_threads_stats_json_is_byte_identical(
        workload in prop::sample::select(vec![
            Workload::Histogram,
            Workload::Spmv,
            Workload::Md,
        ]),
        fetch in any::<bool>(),
        seed in 1u64..24,
    ) {
        let mut cfg = machine();
        cfg.req_sample = 32;
        let kernel = ScatterKernel::histogram(0, scatter_trace(workload, seed));
        let run_mode = |threads: usize, ff: bool| {
            let mut node = NodeMemSys::new(cfg, 0, false);
            node.set_fast_forward(ff);
            node.set_node_threads(threads);
            let run = drive_scatter_with(node, &kernel, fetch);
            let image = run.result_i64(256);
            (run.cycles, run.drain_cycles, run.fetched.clone(),
             run_stats_json(&run), image)
        };
        let (cycles, drain, fetched, stats, image) = run_mode(1, false);
        let reference = strip_skipped(&stats);
        for threads in [1usize, 2, 4, 8] {
            for ff in [false, true] {
                let (c, d, f, s, i) = run_mode(threads, ff);
                prop_assert_eq!(c, cycles, "cycles, threads={} ff={}", threads, ff);
                prop_assert_eq!(d, drain, "drain, threads={} ff={}", threads, ff);
                prop_assert_eq!(&f, &fetched, "fetched, threads={} ff={}", threads, ff);
                prop_assert_eq!(&i, &image, "memory image, threads={} ff={}", threads, ff);
                prop_assert_eq!(strip_skipped(&s), reference.clone(),
                    "stats bytes, threads={} ff={}", threads, ff);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The observability half of the contract: at a fixed snapshot cadence
    /// the `sa-probe` stream is byte-identical across node-thread widths and
    /// fast-forward modes (modulo each line's own `skipped_cycles`). The
    /// epoch scheduler must clamp its horizon so every due snapshot cycle is
    /// actually ticked, and the host profiler — enabled on one side only —
    /// must never leak wall-clock bytes into a compared document.
    #[test]
    fn node_threads_probe_stream_is_byte_identical(
        workload in prop::sample::select(vec![
            Workload::Histogram,
            Workload::Spmv,
            Workload::Md,
        ]),
        interval in prop::sample::select(vec![32u64, 128]),
        seed in 1u64..16,
    ) {
        let mut cfg = machine();
        cfg.req_sample = 32;
        let kernel = ScatterKernel::histogram(0, scatter_trace(workload, seed));
        let run_mode = |threads: usize, ff: bool, profile: bool| {
            let mut node = NodeMemSys::new(cfg, 0, false);
            node.set_fast_forward(ff);
            node.set_node_threads(threads);
            let mut probe = Introspect::off();
            probe.recorder = ProbeRecorder::every(interval);
            probe.profiler = HostProfiler::enabled(profile);
            let run = drive_scatter_probed(node, &kernel, false, &mut probe);
            (run_stats_json(&run), probe.recorder.take_lines())
        };
        let (stats_ref, lines_ref) = run_mode(1, false, false);
        prop_assert!(!lines_ref.is_empty(), "cadence must fire at least once");
        let stats_ref = strip_skipped(&stats_ref);
        let lines_ref = strip_probe_skipped(&lines_ref);
        for threads in [2usize, 4, 8] {
            for ff in [false, true] {
                let (stats, lines) = run_mode(threads, ff, true);
                prop_assert_eq!(strip_skipped(&stats), stats_ref.clone(),
                    "stats bytes, threads={} ff={}", threads, ff);
                prop_assert_eq!(strip_probe_skipped(&lines), lines_ref.clone(),
                    "probe stream, threads={} ff={}", threads, ff);
            }
        }
    }
}
