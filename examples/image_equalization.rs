//! Histogram equalization of a low-contrast image — the image-processing
//! use case from the paper's introduction.
//!
//! ```text
//! cargo run --release --example image_equalization
//! ```
//!
//! Runs the classic three-stage pipeline on the simulated machine twice —
//! once with hardware scatter-add + the hardware scan engine, once with the
//! software baselines — verifies both against a scalar reference, and
//! prints per-stage timing plus a terminal rendering of the contrast
//! stretch.

use sa_apps::image::{equalize_reference, run_equalize_hw, run_equalize_sw, GreyImage};
use sa_sim::MachineConfig;

fn ascii_histogram(label: &str, pixels: &[u8]) {
    let mut bins = [0usize; 16];
    for &p in pixels {
        bins[(p as usize) / 16] += 1;
    }
    let max = bins.iter().copied().max().max(Some(1)).unwrap();
    println!("{label}");
    for (i, &b) in bins.iter().enumerate() {
        let bar = "#".repeat(b * 40 / max);
        println!("  [{:>3}-{:>3}] {bar}", i * 16, i * 16 + 15);
    }
}

fn main() {
    let machine = MachineConfig::merrimac();
    let img = GreyImage::synthetic(128, 128, 2005);

    let hw = run_equalize_hw(&machine, &img);
    let sw = run_equalize_sw(&machine, &img);
    let reference = equalize_reference(&img);
    assert_eq!(hw.output, reference, "hardware pipeline is exact");
    assert_eq!(sw.output, reference, "software pipeline is exact");

    ascii_histogram("input level distribution:", &img.pixels);
    ascii_histogram("\nequalized level distribution:", &hw.output);

    println!(
        "\npipeline timing at 1 GHz ({}x{} pixels):",
        img.width, img.height
    );
    println!(
        "  {:<10}{:>12}{:>12}{:>12}{:>12}",
        "variant", "histogram", "cdf scan", "remap", "total"
    );
    for (name, r) in [("hardware", &hw), ("software", &sw)] {
        println!(
            "  {:<10}{:>10.1}us{:>10.1}us{:>10.1}us{:>10.1}us",
            name,
            r.histogram_cycles as f64 / 1e3,
            r.scan_cycles as f64 / 1e3,
            r.remap_cycles as f64 / 1e3,
            r.micros()
        );
    }
    println!(
        "\nhardware speedup: {:.2}x",
        sw.cycles as f64 / hw.cycles as f64
    );
}
