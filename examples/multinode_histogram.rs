//! Multi-node scatter-add with and without cache combining.
//!
//! ```text
//! cargo run --release --example multinode_histogram
//! ```
//!
//! Replays a high-locality histogram trace (the paper's *narrow* dataset
//! shape, §4.5) on 1–8 nodes over the low-bandwidth network, with and
//! without the cache-combining/sum-back optimization of §3.2, and prints
//! the scatter-add throughput the way Figure 13 does.

use sa_multinode::{trace_reference, Topology};
use sa_sim::{MachineConfig, NetworkConfig, Rng64};
use scatter_add_repro::{Session, SessionReport, Workload};

fn main() {
    let machine = MachineConfig::merrimac();
    let mut rng = Rng64::new(13);
    // 16K references over 256 bins: lots of sharing between nodes.
    let trace: Vec<u64> = (0..16_384).map(|_| rng.below(256)).collect();
    let values = vec![1.0f64; trace.len()];
    let reference = trace_reference(&trace, &values);

    println!(
        "narrow histogram trace ({} refs, 256 bins) on the low-bandwidth network",
        trace.len()
    );
    println!(
        "{:<8}{:>16}{:>18}",
        "nodes", "direct GB/s", "combining GB/s"
    );
    for nodes in [1usize, 2, 4, 8] {
        let run = |combining: bool| -> SessionReport {
            Session::builder()
                .config(machine)
                .workload(Workload::MultiNode {
                    nodes,
                    network: NetworkConfig::low(),
                    combining,
                    topology: Topology::Flat,
                    trace: trace.clone(),
                    values: values.clone(),
                })
                .build()
                .expect("valid session")
                .run()
        };
        let rd = run(false);
        let rc = run(true);

        // Both modes must produce the exact same sums.
        for (&w, &expect) in &reference {
            for (mode, report) in [("direct", &rd), ("combining", &rc)] {
                let got = report.result_f64()[w as usize];
                assert!(
                    (got - expect).abs() < 1e-9,
                    "{mode} result mismatch at word {w}: {got} vs {expect}"
                );
            }
        }

        println!(
            "{:<8}{:>16.2}{:>18.2}   ({} sum-back lines)",
            nodes,
            rd.throughput_gbps(machine.ghz),
            rc.throughput_gbps(machine.ghz),
            rc.sum_back_lines,
        );
    }
    println!(
        "\ncombining keeps the traffic local until eviction, so it scales where direct cannot"
    );
}
