//! Quickstart: compute a histogram with the hardware scatter-add unit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's introductory example (§1): `histogram[data[i]] += 1`
//! executed as a single data-parallel `scatterAdd(histogram, data, 1)` with
//! atomicity guaranteed by the combining store — no locks, no sorting.

use sa_sim::{MachineConfig, Rng64};
use scatter_add_repro::{Session, Workload};

fn main() {
    // The base machine of Table 1: 8 cache banks, one scatter-add unit per
    // bank, 8-entry combining stores, 4-cycle FP adders.
    let machine = MachineConfig::merrimac();

    // A dataset of 10,000 uniform random values over 64 bins.
    let mut rng = Rng64::new(2005);
    let data: Vec<u64> = (0..10_000).map(|_| rng.below(64)).collect();

    // scatterAdd(histogram, data, 1)
    let report = Session::builder()
        .config(machine)
        .workload(Workload::Histogram {
            base_word: 0,
            indices: data.clone(),
        })
        .build()
        .expect("valid session")
        .run();
    let bins = report.result_i64();

    // Check against the sequential loop.
    let mut expect = vec![0i64; 64];
    for &d in &data {
        expect[d as usize] += 1;
    }
    assert_eq!(bins, expect, "hardware scatter-add is exact");

    let sa = &report.node_stats[0].sa;
    println!("histogram of 10,000 elements over 64 bins");
    println!(
        "  simulated execution time: {:.2} us at 1 GHz",
        report.micros()
    );
    println!(
        "  memory reads suppressed by combining: {} of {} requests",
        sa.combined, sa.accepted
    );
    println!(
        "  additions chained inside the store (no memory round-trip): {}",
        sa.chained
    );
    let peak = bins.iter().enumerate().max_by_key(|(_, &v)| v).unwrap();
    println!("  fullest bin: #{} with {} elements", peak.0, peak.1);
}
