//! Particle-in-cell plasma step on the simulated machine.
//!
//! ```text
//! cargo run --release --example plasma_pic
//! ```
//!
//! Runs the two-stream instability: the reference dynamics evolve for a few
//! dozen steps (watch the field energy grow), and one representative step is
//! executed on the simulated machine — charge deposition by hardware
//! scatter-add, field solve on the scan engine, particle push by gather —
//! with the timing breakdown printed.

use sa_apps::pic::{run_step_hw, PicSystem};
use sa_sim::MachineConfig;

fn field_energy(sys: &PicSystem) -> f64 {
    let e = sys.solve_field(&sys.deposit_reference());
    e.iter().map(|v| v * v).sum()
}

fn main() {
    let machine = MachineConfig::merrimac();
    let mut sys = PicSystem::two_stream(20_000, 128, 7);

    println!(
        "two-stream instability: {} particles on a {}-cell periodic grid",
        sys.particles(),
        sys.grid
    );
    println!("{:>6}  {:>14}", "step", "field energy");
    for step in 0..=50 {
        if step % 10 == 0 {
            println!("{step:>6}  {:>14.4e}", field_energy(&sys));
        }
        sys.step_reference();
    }

    // Time one step of the (now interestingly structured) system on the
    // machine.
    let run = run_step_hw(&machine, &sys);
    let reference = sys.deposit_reference();
    let max_dev = run
        .rho
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_dev < 1e-9, "machine deposit deviates: {max_dev}");

    println!("\none PIC step on the simulated machine (1 GHz):");
    println!(
        "  deposit (scatter-add): {:>8.2} us",
        run.deposit_cycles as f64 / 1e3
    );
    println!(
        "  field solve (scan):    {:>8.2} us",
        run.field_cycles as f64 / 1e3
    );
    println!(
        "  gather + push:         {:>8.2} us",
        run.push_cycles as f64 / 1e3
    );
    println!("  total:                 {:>8.2} us", run.micros());
}
