//! Superposition in a scientific code: particle-in-cell charge deposition.
//!
//! ```text
//! cargo run --release --example particle_deposition
//! ```
//!
//! The paper motivates scatter-add with "superposition ... in many physical
//! scientific applications", citing particle-in-cell plasma simulation. This
//! example deposits the charge of 20,000 particles onto a 1-D grid with
//! linear (cloud-in-cell) weighting: every particle adds to *two* grid
//! points, and many particles share grid points — a floating-point
//! scatter-add. It runs the same deposition three ways and compares:
//!
//! * hardware scatter-add (the paper's mechanism),
//! * batched sort + segmented scan (the software baseline),
//! * a scalar reference (for correctness).

use sa_core::ScatterKernel;
use sa_proc::Executor;
use sa_sim::{Addr, MachineConfig, Rng64};
use sa_sw::{build_sort_scan, SortScanLayout, DEFAULT_BATCH};
use scatter_add_repro::{Session, Workload};

const GRID: usize = 1024;
const PARTICLES: usize = 20_000;

fn main() {
    let machine = MachineConfig::merrimac();
    let mut rng = Rng64::new(42);

    // Particles with positions in [0, GRID-1) and unit charge.
    let positions: Vec<f64> = (0..PARTICLES)
        .map(|_| rng.range_f64(0.0, (GRID - 1) as f64))
        .collect();

    // Cloud-in-cell weighting: particle at x deposits (1-f) to cell i and
    // f to cell i+1, where i = floor(x), f = x - i.
    let mut indices = Vec::with_capacity(2 * PARTICLES);
    let mut weights = Vec::with_capacity(2 * PARTICLES);
    for &x in &positions {
        let i = x.floor() as u64;
        let f = x - x.floor();
        indices.push(i);
        weights.push(1.0 - f);
        indices.push(i + 1);
        weights.push(f);
    }
    let kernel = ScatterKernel::superposition(0, indices, &weights);

    // Scalar reference.
    let mut reference = vec![0.0f64; GRID];
    for (idx, w) in kernel.indices.iter().zip(&weights) {
        reference[*idx as usize] += w;
    }

    // Hardware scatter-add.
    let hw = Session::builder()
        .config(machine)
        .workload(Workload::Scatter(kernel.clone()))
        .build()
        .expect("valid session")
        .run();
    let mut hw_grid = hw.result_f64();
    hw_grid.resize(GRID, 0.0);
    let max_dev = hw_grid
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_dev < 1e-9, "deposition deviates: {max_dev}");

    // Software baseline, timed on the same machine.
    let layout = SortScanLayout {
        idx_base: 1 << 20,
        val_base: Some(1 << 21),
    };
    let prog = build_sort_scan(&kernel, &layout, DEFAULT_BATCH);
    let mut node = sa_core::NodeMemSys::new(machine, 0, false);
    let report = Executor::new(machine).run(&prog, &mut node);
    let sw_grid = node.store().extract_f64(Addr(0), GRID);
    let sw_dev = sw_grid
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(sw_dev < 1e-9, "software deposition deviates: {sw_dev}");

    let total: f64 = hw_grid.iter().sum();
    println!("deposited {PARTICLES} particles onto a {GRID}-cell grid");
    println!("  total charge (should be {PARTICLES}): {total:.3}");
    println!("  hardware scatter-add: {:>9.2} us", hw.micros());
    println!("  sort + segmented scan:{:>9.2} us", report.micros());
    println!(
        "  hardware speedup:     {:>9.2}x",
        report.cycles as f64 / hw.cycles as f64
    );
}
