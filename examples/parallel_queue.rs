//! Parallel queue allocation with the data-parallel fetch-and-add extension.
//!
//! ```text
//! cargo run --release --example parallel_queue
//! ```
//!
//! §3.3 of the paper: "a more interesting modification is to allow a return
//! path for the original data before the addition is performed and implement
//! a parallel fetch-add operation ... used to perform parallel queue
//! allocation on SIMD vector and stream systems."
//!
//! This example compacts the elements of a stream that pass a predicate into
//! a dense output queue: every passing element fetch-adds 1 to a shared tail
//! counter and writes itself at the returned (pre-increment) slot. The
//! hardware guarantees every slot is handed out exactly once even though all
//! lanes hit the same counter simultaneously.

use sa_core::ScatterKernel;
use sa_sim::{MachineConfig, Rng64, ScalarKind, ScatterOp};
use scatter_add_repro::{Session, Workload};

fn main() {
    let machine = MachineConfig::merrimac();
    let mut rng = Rng64::new(7);

    // A stream of values; keep the ones divisible by 3.
    let stream: Vec<u64> = (0..4096).map(|_| rng.below(1000)).collect();
    let keep: Vec<u64> = stream.iter().copied().filter(|v| v % 3 == 0).collect();

    // Every kept element performs fetch-and-add(+1) on the tail counter at
    // word 0. The returned old value is its queue slot.
    let kernel = ScatterKernel {
        base_word: 0,
        indices: vec![0; keep.len()],
        values: vec![1; keep.len()],
        kind: ScalarKind::I64,
        op: ScatterOp::Add,
    };
    let report = Session::builder()
        .config(machine)
        .workload(Workload::Scatter(kernel))
        .fetch(true)
        .build()
        .expect("valid session")
        .run();

    // Build the queue from the returned slots: fetched is (request id, slot).
    let mut queue = vec![u64::MAX; keep.len()];
    for &(req_id, slot) in &report.fetched {
        queue[slot as usize] = keep[req_id as usize];
    }

    // Every slot was assigned exactly once...
    assert!(queue.iter().all(|&v| v != u64::MAX), "every slot filled");
    // ...the tail equals the number of kept elements...
    assert_eq!(report.result_i64()[0] as usize, keep.len());
    // ...and the queue holds exactly the kept elements (order is the
    // hardware's completion order, which is deterministic but not program
    // order — the reordering caveat of §3.3).
    let mut sorted_queue = queue.clone();
    sorted_queue.sort_unstable();
    let mut sorted_keep = keep.clone();
    sorted_keep.sort_unstable();
    assert_eq!(sorted_queue, sorted_keep);

    let sa = &report.node_stats[0].sa;
    println!(
        "compacted {} of {} elements into a dense queue in {:.2} us",
        keep.len(),
        stream.len(),
        report.micros()
    );
    println!(
        "  fetch-and-adds chained through one counter: {} chains, {} combined",
        sa.chained, sa.combined
    );
    println!("  first eight queue entries: {:?}", &queue[..8]);
}
