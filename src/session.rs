//! The [`Session`] builder — one front door to the whole simulator.
//!
//! Historically each entry point was a separate free function with its own
//! argument list (`drive_scatter`, `MultiNode::run_trace`, ...), and
//! cross-cutting concerns — telemetry sampling, fast-forward, fault
//! injection — were configured through per-type setters or process-wide
//! defaults. A `Session` names every knob once and validates the
//! combination before anything runs:
//!
//! ```
//! use scatter_add_repro::{Session, Workload};
//!
//! let report = Session::builder()
//!     .workload(Workload::Histogram {
//!         base_word: 0,
//!         indices: vec![0, 1, 1, 2, 1],
//!     })
//!     .build()
//!     .expect("valid session")
//!     .run();
//! assert_eq!(report.result[..3], [1, 3, 1]);
//! ```
//!
//! Fault plans installed with [`SessionBuilder::faults`] apply to exactly
//! this session's machines (never through the process-wide default), so
//! concurrent sessions with different plans do not interfere.

use std::sync::Arc;

use sa_cache::CacheStats;
use sa_core::{drive_scatter_probed, NodeMemSys, NodeStats, SaStats, ScatterKernel};
use sa_faults::{FaultPlan, ResilienceStats};
use sa_mem::DramStats;
use sa_memo::{Fingerprint, ResultCache};
use sa_multinode::{MultiNode, Topology};
use sa_sim::{Addr, MachineConfig, NetworkConfig, QueueStats};
use sa_telemetry::{
    global_progress, HostProfiler, Introspect, Json, OccupancyStats, ProbeRecorder, Progress,
};

/// What a [`Session`] simulates.
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// A histogram: every index contributes `+1` (integer scatter-add) to
    /// `base_word + index`.
    Histogram {
        /// First word of the result array.
        base_word: u64,
        /// The index trace.
        indices: Vec<u64>,
    },
    /// An arbitrary single-node scatter kernel (any scalar kind/op).
    Scatter(ScatterKernel),
    /// A floating-point scatter-add trace distributed over several nodes.
    MultiNode {
        /// Node count (a power of two under [`Topology::Hypercube`]).
        nodes: usize,
        /// Inter-node fabric parameters.
        network: NetworkConfig,
        /// Whether remote requests combine in the local cache (sum-back).
        combining: bool,
        /// Sum-back routing topology.
        topology: Topology,
        /// Target word indices.
        trace: Vec<u64>,
        /// One f64 addend per trace entry.
        values: Vec<f64>,
    },
}

/// Telemetry knobs for a session (see `docs/OBSERVABILITY.md`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Cycle-series sampling interval (0 disables sampling).
    pub sample_interval: u64,
    /// Request-lifecycle sampling: one in `req_sample` requests gets a full
    /// stage-by-stage timeline (0 disables request tracing).
    pub req_sample: u64,
}

/// Everything a finished session reports.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionReport {
    /// Simulated cycles to completion.
    pub cycles: u64,
    /// Cycles the scheduler fast-forwarded over (wall-clock accounting
    /// only; every other field is byte-identical with skipping off).
    pub skipped_cycles: u64,
    /// Machine statistics, one entry per node.
    pub node_stats: Vec<NodeStats>,
    /// Merged fault-recovery counters (all zero without a fault plan).
    pub resilience: ResilienceStats,
    /// Raw bits of the result array, `base..base + len` words.
    pub result: Vec<u64>,
    /// Pre-op values returned by fetch-ops, in completion order (empty
    /// unless [`SessionBuilder::fetch`] was set; single-node only).
    pub fetched: Vec<(u64, u64)>,
    /// `sa-probe` snapshot lines (compact JSON, one per cadence point;
    /// empty unless [`SessionBuilder::probe`] set an interval). At a fixed
    /// interval these bytes are identical across step-thread counts and
    /// fast-forward settings, except for the `skipped_cycles` field each
    /// line carries.
    pub probe_lines: Vec<String>,
    /// Application scatter-add operations performed (the workload length).
    pub adds: u64,
    /// Sum-back lines that crossed the network (multinode combining runs;
    /// 0 otherwise).
    pub sum_back_lines: u64,
}

impl SessionReport {
    /// Simulated execution time in microseconds at 1 GHz.
    pub fn micros(&self) -> f64 {
        self.cycles as f64 / 1e3
    }

    /// The result array reinterpreted as signed integers (for integer
    /// workloads such as [`Workload::Histogram`]).
    pub fn result_i64(&self) -> Vec<i64> {
        self.result.iter().map(|&b| b as i64).collect()
    }

    /// The result array reinterpreted as doubles (for floating-point
    /// workloads).
    pub fn result_f64(&self) -> Vec<f64> {
        self.result.iter().map(|&b| f64::from_bits(b)).collect()
    }

    /// Scatter-add throughput in GB/s at `ghz`, the Figure 13 metric: one
    /// word of application data retired per add.
    pub fn throughput_gbps(&self, ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.adds as f64 * sa_sim::WORD_BYTES as f64 * ghz / self.cycles as f64
    }

    /// The bottleneck attribution report for this run: per-resource
    /// occupancy (busy / blocked / idle / saturated), the dominant-resource
    /// classification with utilization evidence, and the analytic what-if
    /// table — the `session` entry of a v5 `bottleneck` section (see
    /// `docs/OBSERVABILITY.md`). Render with
    /// [`sa_telemetry::render_bottleneck`]. `None` when the report carries
    /// no node statistics.
    pub fn bottleneck(&self) -> Option<sa_telemetry::Json> {
        use sa_telemetry::{Json, MetricsRegistry};
        if self.node_stats.is_empty() {
            return None;
        }
        let mut registry = MetricsRegistry::new();
        {
            let mut scope = registry.scope("session");
            scope.counter("cycles", self.cycles);
            if let [only] = self.node_stats.as_slice() {
                only.record(&mut scope);
            } else {
                for (i, ns) in self.node_stats.iter().enumerate() {
                    ns.record(&mut scope.scope(&format!("node{i}")));
                }
            }
        }
        let mut doc = Json::obj();
        doc.push("metrics", registry.to_json());
        sa_telemetry::bottleneck_json(&doc)
    }

    /// Serialize the complete report for the result cache.
    ///
    /// Exact: every field (including raw result bits and probe lines)
    /// round-trips through [`SessionReport::from_json`] to an equal report,
    /// so a cache hit reproduces the original run byte-for-byte. Note that
    /// `skipped_cycles` is part of the payload: a hit replays the *cached*
    /// run's fast-forward accounting, consistent with the byte-identity
    /// contract that already holds only modulo `skipped_cycles`.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("cycles", Json::UInt(self.cycles));
        doc.push("skipped_cycles", Json::UInt(self.skipped_cycles));
        doc.push(
            "node_stats",
            Json::Arr(self.node_stats.iter().map(node_stats_json).collect()),
        );
        doc.push("resilience", resilience_json(&self.resilience));
        doc.push(
            "result",
            Json::Arr(self.result.iter().map(|&w| Json::UInt(w)).collect()),
        );
        doc.push(
            "fetched",
            Json::Arr(
                self.fetched
                    .iter()
                    .map(|&(a, v)| Json::Arr(vec![Json::UInt(a), Json::UInt(v)]))
                    .collect(),
            ),
        );
        doc.push(
            "probe_lines",
            Json::Arr(
                self.probe_lines
                    .iter()
                    .map(|l| Json::Str(l.clone()))
                    .collect(),
            ),
        );
        doc.push("adds", Json::UInt(self.adds));
        doc.push("sum_back_lines", Json::UInt(self.sum_back_lines));
        doc
    }

    /// Rebuild a report serialized by [`SessionReport::to_json`].
    pub fn from_json(doc: &Json) -> Result<SessionReport, String> {
        let node_stats = doc
            .get("node_stats")
            .and_then(Json::as_arr)
            .ok_or("report: missing 'node_stats'")?
            .iter()
            .map(node_stats_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let result = doc
            .get("result")
            .and_then(Json::as_arr)
            .ok_or("report: missing 'result'")?
            .iter()
            .map(|w| w.as_u64().ok_or("report: non-u64 result word"))
            .collect::<Result<Vec<_>, _>>()?;
        let fetched = doc
            .get("fetched")
            .and_then(Json::as_arr)
            .ok_or("report: missing 'fetched'")?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or("report: fetched entry is not a pair")?;
                match (pair[0].as_u64(), pair[1].as_u64()) {
                    (Some(a), Some(v)) => Ok((a, v)),
                    _ => Err("report: non-u64 fetched pair".to_string()),
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        let probe_lines = doc
            .get("probe_lines")
            .and_then(Json::as_arr)
            .ok_or("report: missing 'probe_lines'")?
            .iter()
            .map(|l| {
                l.as_str()
                    .map(str::to_string)
                    .ok_or("report: non-string probe line")
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SessionReport {
            cycles: get_u64(doc, "cycles")?,
            skipped_cycles: get_u64(doc, "skipped_cycles")?,
            node_stats,
            resilience: resilience_from_json(
                doc.get("resilience")
                    .ok_or("report: missing 'resilience'")?,
            )?,
            result,
            fetched,
            probe_lines,
            adds: get_u64(doc, "adds")?,
            sum_back_lines: get_u64(doc, "sum_back_lines")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Report (de)serialization helpers. Field lists mirror the stat structs in
// their home crates; adding a field there without extending these fails the
// session round-trip test, not silently.
// ---------------------------------------------------------------------------

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field '{key}'"))
}

fn occ_json(o: &OccupancyStats) -> Json {
    let mut j = Json::obj();
    j.push("busy", Json::UInt(o.busy));
    j.push("blocked", Json::UInt(o.blocked));
    j.push("idle", Json::UInt(o.idle));
    j.push("saturated", Json::UInt(o.saturated));
    j
}

fn occ_from_json(doc: &Json) -> Result<OccupancyStats, String> {
    Ok(OccupancyStats {
        busy: get_u64(doc, "busy")?,
        blocked: get_u64(doc, "blocked")?,
        idle: get_u64(doc, "idle")?,
        saturated: get_u64(doc, "saturated")?,
    })
}

fn node_stats_json(ns: &NodeStats) -> Json {
    let mut sa = Json::obj();
    sa.push("accepted", Json::UInt(ns.sa.accepted));
    sa.push("combined", Json::UInt(ns.sa.combined));
    sa.push("reads_issued", Json::UInt(ns.sa.reads_issued));
    sa.push("writes_issued", Json::UInt(ns.sa.writes_issued));
    sa.push("chained", Json::UInt(ns.sa.chained));
    sa.push("stalled_full", Json::UInt(ns.sa.stalled_full));
    sa.push("fetch_ops", Json::UInt(ns.sa.fetch_ops));
    sa.push("occupancy_integral", Json::UInt(ns.sa.occupancy_integral));
    sa.push("occ", occ_json(&ns.sa.occ));

    let mut cache = Json::obj();
    cache.push("read_hits", Json::UInt(ns.cache.read_hits));
    cache.push("read_misses", Json::UInt(ns.cache.read_misses));
    cache.push("read_merges", Json::UInt(ns.cache.read_merges));
    cache.push("write_hits", Json::UInt(ns.cache.write_hits));
    cache.push("write_arounds", Json::UInt(ns.cache.write_arounds));
    cache.push("write_merges", Json::UInt(ns.cache.write_merges));
    cache.push("zero_allocs", Json::UInt(ns.cache.zero_allocs));
    cache.push("evictions", Json::UInt(ns.cache.evictions));
    cache.push("write_backs", Json::UInt(ns.cache.write_backs));
    cache.push("sum_backs", Json::UInt(ns.cache.sum_backs));
    cache.push("blocked", Json::UInt(ns.cache.blocked));
    cache.push("mshr_full", Json::UInt(ns.cache.mshr_full));
    cache.push("occ", occ_json(&ns.cache.occ));

    let mut dram = Json::obj();
    dram.push("reads", Json::UInt(ns.dram.reads));
    dram.push("writes", Json::UInt(ns.dram.writes));
    dram.push("row_hits", Json::UInt(ns.dram.row_hits));
    dram.push("row_misses", Json::UInt(ns.dram.row_misses));
    dram.push("words_transferred", Json::UInt(ns.dram.words_transferred));
    dram.push("total_latency", Json::UInt(ns.dram.total_latency));
    dram.push("occ", occ_json(&ns.dram.occ));

    let q = &ns.bank_in;
    let mut bank_in = Json::obj();
    bank_in.push("enqueued", Json::UInt(q.enqueued));
    bank_in.push("rejected", Json::UInt(q.rejected));
    bank_in.push("peak_occupancy", Json::UInt(q.peak_occupancy));
    bank_in.push("occ_sum", Json::UInt(q.occ_sum));
    bank_in.push("capacity", Json::UInt(q.capacity));
    bank_in.push(
        "occ_hist",
        Json::Arr(q.occ_hist.iter().map(|&c| Json::UInt(c)).collect()),
    );
    bank_in.push("created_at", Json::UInt(q.created_at));
    bank_in.push("advanced_to", Json::UInt(q.advanced_to));
    bank_in.push("occ_integral", Json::UInt(q.occ_integral));

    let mut j = Json::obj();
    j.push("sa", sa);
    j.push("cache", cache);
    j.push("dram", dram);
    j.push("bank_in", bank_in);
    j.push("resilience", resilience_json(&ns.resilience));
    j
}

fn node_stats_from_json(doc: &Json) -> Result<NodeStats, String> {
    let sa = doc.get("sa").ok_or("node_stats: missing 'sa'")?;
    let cache = doc.get("cache").ok_or("node_stats: missing 'cache'")?;
    let dram = doc.get("dram").ok_or("node_stats: missing 'dram'")?;
    let bank_in = doc.get("bank_in").ok_or("node_stats: missing 'bank_in'")?;
    let hist = bank_in
        .get("occ_hist")
        .and_then(Json::as_arr)
        .ok_or("node_stats: missing 'occ_hist'")?;
    let mut occ_hist = [0u64; 8];
    if hist.len() != occ_hist.len() {
        return Err("node_stats: occ_hist bucket count mismatch".into());
    }
    for (slot, bucket) in occ_hist.iter_mut().zip(hist) {
        *slot = bucket
            .as_u64()
            .ok_or("node_stats: non-u64 occ_hist bucket")?;
    }
    Ok(NodeStats {
        sa: SaStats {
            accepted: get_u64(sa, "accepted")?,
            combined: get_u64(sa, "combined")?,
            reads_issued: get_u64(sa, "reads_issued")?,
            writes_issued: get_u64(sa, "writes_issued")?,
            chained: get_u64(sa, "chained")?,
            stalled_full: get_u64(sa, "stalled_full")?,
            fetch_ops: get_u64(sa, "fetch_ops")?,
            occupancy_integral: get_u64(sa, "occupancy_integral")?,
            occ: occ_from_json(sa.get("occ").ok_or("sa: missing 'occ'")?)?,
        },
        cache: CacheStats {
            read_hits: get_u64(cache, "read_hits")?,
            read_misses: get_u64(cache, "read_misses")?,
            read_merges: get_u64(cache, "read_merges")?,
            write_hits: get_u64(cache, "write_hits")?,
            write_arounds: get_u64(cache, "write_arounds")?,
            write_merges: get_u64(cache, "write_merges")?,
            zero_allocs: get_u64(cache, "zero_allocs")?,
            evictions: get_u64(cache, "evictions")?,
            write_backs: get_u64(cache, "write_backs")?,
            sum_backs: get_u64(cache, "sum_backs")?,
            blocked: get_u64(cache, "blocked")?,
            mshr_full: get_u64(cache, "mshr_full")?,
            occ: occ_from_json(cache.get("occ").ok_or("cache: missing 'occ'")?)?,
        },
        dram: DramStats {
            reads: get_u64(dram, "reads")?,
            writes: get_u64(dram, "writes")?,
            row_hits: get_u64(dram, "row_hits")?,
            row_misses: get_u64(dram, "row_misses")?,
            words_transferred: get_u64(dram, "words_transferred")?,
            total_latency: get_u64(dram, "total_latency")?,
            occ: occ_from_json(dram.get("occ").ok_or("dram: missing 'occ'")?)?,
        },
        bank_in: QueueStats {
            enqueued: get_u64(bank_in, "enqueued")?,
            rejected: get_u64(bank_in, "rejected")?,
            peak_occupancy: get_u64(bank_in, "peak_occupancy")?,
            occ_sum: get_u64(bank_in, "occ_sum")?,
            capacity: get_u64(bank_in, "capacity")?,
            occ_hist,
            created_at: get_u64(bank_in, "created_at")?,
            advanced_to: get_u64(bank_in, "advanced_to")?,
            occ_integral: get_u64(bank_in, "occ_integral")?,
        },
        resilience: resilience_from_json(
            doc.get("resilience")
                .ok_or("node_stats: missing 'resilience'")?,
        )?,
    })
}

fn resilience_json(r: &ResilienceStats) -> Json {
    let mut j = Json::obj();
    j.push("ecc_corrected", Json::UInt(r.ecc_corrected));
    j.push("ecc_detected", Json::UInt(r.ecc_detected));
    j.push("ecc_uncorrected", Json::UInt(r.ecc_uncorrected));
    j.push("mshr_replays", Json::UInt(r.mshr_replays));
    j.push("net_nacks", Json::UInt(r.net_nacks));
    j.push("net_dropped", Json::UInt(r.net_dropped));
    j.push("net_recovered", Json::UInt(r.net_recovered));
    j.push("net_retries", Json::UInt(r.net_retries));
    j.push("cs_stalls", Json::UInt(r.cs_stalls));
    j.push("cs_timeouts", Json::UInt(r.cs_timeouts));
    j
}

fn resilience_from_json(doc: &Json) -> Result<ResilienceStats, String> {
    Ok(ResilienceStats {
        ecc_corrected: get_u64(doc, "ecc_corrected")?,
        ecc_detected: get_u64(doc, "ecc_detected")?,
        ecc_uncorrected: get_u64(doc, "ecc_uncorrected")?,
        mshr_replays: get_u64(doc, "mshr_replays")?,
        net_nacks: get_u64(doc, "net_nacks")?,
        net_dropped: get_u64(doc, "net_dropped")?,
        net_recovered: get_u64(doc, "net_recovered")?,
        net_retries: get_u64(doc, "net_retries")?,
        cs_stalls: get_u64(doc, "cs_stalls")?,
        cs_timeouts: get_u64(doc, "cs_timeouts")?,
    })
}

/// Staged configuration for a [`Session`]; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct SessionBuilder {
    config: Option<MachineConfig>,
    workload: Option<Workload>,
    faults: Option<FaultPlan>,
    telemetry: Telemetry,
    fast_forward: Option<bool>,
    step_threads: usize,
    node_threads: usize,
    probe_interval: u64,
    progress: Option<Progress>,
    fetch: bool,
    cache: Option<Arc<ResultCache>>,
}

impl SessionBuilder {
    /// The machine configuration (defaults to
    /// [`MachineConfig::merrimac`], the paper's Table 1 machine).
    pub fn config(mut self, cfg: MachineConfig) -> SessionBuilder {
        self.config = Some(cfg);
        self
    }

    /// What to simulate. Required.
    pub fn workload(mut self, workload: Workload) -> SessionBuilder {
        self.workload = Some(workload);
        self
    }

    /// Inject faults from `plan` (see `docs/RESILIENCE.md`). An empty plan
    /// is equivalent to no plan: the run is byte-identical to fault-free.
    pub fn faults(mut self, plan: FaultPlan) -> SessionBuilder {
        self.faults = Some(plan);
        self
    }

    /// Telemetry sampling knobs (default: all sampling off).
    pub fn telemetry(mut self, telemetry: Telemetry) -> SessionBuilder {
        self.telemetry = telemetry;
        self
    }

    /// Force event-horizon fast-forward on or off (default: the
    /// process-wide setting, see [`sa_sim::set_fast_forward_default`]).
    pub fn fast_forward(mut self, enabled: bool) -> SessionBuilder {
        self.fast_forward = Some(enabled);
        self
    }

    /// Worker threads for phase-parallel multinode stepping (default 1;
    /// results are bit-identical for every value).
    pub fn step_threads(mut self, threads: usize) -> SessionBuilder {
        self.step_threads = threads.max(1);
        self
    }

    /// Worker threads stepping the bank lanes *within* a node — the third
    /// parallelism axis (see `docs/PARALLELISM.md`). Default: the
    /// process-wide [`sa_sim::node_threads_default`]. Results are
    /// byte-identical for every value. Single-node workloads only;
    /// multi-node machines already step each node on its own thread and
    /// ignore this.
    pub fn node_threads(mut self, threads: usize) -> SessionBuilder {
        self.node_threads = threads.max(1);
        self
    }

    /// Take an `sa-probe` component snapshot every `interval` simulated
    /// cycles (0, the default, disables probing). The snapshot lines land
    /// in [`SessionReport::probe_lines`] and stream to the progress sink
    /// when one is attached.
    pub fn probe(mut self, interval: u64) -> SessionBuilder {
        self.probe_interval = interval;
        self
    }

    /// Attach a live progress sink for heartbeats and probe streaming
    /// (default: the process-wide sink installed by
    /// [`sa_telemetry::set_global_progress`], off unless a `--progress` or
    /// `--probe-listen` flag enabled it).
    pub fn progress(mut self, progress: Progress) -> SessionBuilder {
        self.progress = Some(progress);
        self
    }

    /// Make every scatter request a fetch-op (§3.3): the pre-op value of
    /// each target word is returned in [`SessionReport::fetched`].
    /// Single-node workloads only.
    pub fn fetch(mut self, enabled: bool) -> SessionBuilder {
        self.fetch = enabled;
        self
    }

    /// Memoize this session's run in `cache` (see `docs/PERFORMANCE.md`).
    ///
    /// Deterministic outputs make the cache *exact*: a hit returns a report
    /// equal to what the simulation would produce, for zero simulated work.
    /// The fingerprint covers every execution-relevant input (workload,
    /// config, fault plan, fetch mode, telemetry cadences) and deliberately
    /// excludes knobs the byte-identity contract proves irrelevant
    /// (`step_threads`, `node_threads`, `fast_forward`, progress sinks).
    /// `skipped_cycles` replays the cached run's value.
    pub fn cache(mut self, cache: Arc<ResultCache>) -> SessionBuilder {
        self.cache = Some(cache);
        self
    }

    /// Validate the combination and produce a runnable [`Session`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: no workload, an empty
    /// machine, mismatched trace/values lengths, a zero node count, or a
    /// non-power-of-two hypercube.
    pub fn build(self) -> Result<Session, String> {
        let workload = self.workload.ok_or("no workload: call .workload(..)")?;
        match &workload {
            Workload::Histogram { indices, .. } => {
                if indices.is_empty() {
                    return Err("histogram workload has no indices".into());
                }
            }
            Workload::Scatter(kernel) => {
                if kernel.indices.len() != kernel.values.len() {
                    return Err(format!(
                        "scatter kernel length mismatch: {} indices vs {} values",
                        kernel.indices.len(),
                        kernel.values.len()
                    ));
                }
            }
            Workload::MultiNode {
                nodes,
                topology,
                trace,
                values,
                ..
            } => {
                if *nodes == 0 {
                    return Err("multinode workload needs at least one node".into());
                }
                if *topology == Topology::Hypercube && !nodes.is_power_of_two() {
                    return Err(format!(
                        "hypercube needs a power-of-two node count, got {nodes}"
                    ));
                }
                if trace.len() != values.len() {
                    return Err(format!(
                        "trace length mismatch: {} indices vs {} values",
                        trace.len(),
                        values.len()
                    ));
                }
                if self.fetch {
                    return Err("fetch-ops are single-node only (§3.3)".into());
                }
            }
        }
        Ok(Session {
            config: self.config.unwrap_or_else(MachineConfig::merrimac),
            workload,
            faults: self.faults,
            telemetry: self.telemetry,
            fast_forward: self.fast_forward,
            step_threads: self.step_threads.max(1),
            node_threads: self.node_threads,
            probe_interval: self.probe_interval,
            progress: self.progress,
            fetch: self.fetch,
            cache: self.cache,
        })
    }
}

/// A validated, runnable simulation; built by [`Session::builder`].
#[derive(Clone, Debug)]
pub struct Session {
    config: MachineConfig,
    workload: Workload,
    faults: Option<FaultPlan>,
    telemetry: Telemetry,
    fast_forward: Option<bool>,
    step_threads: usize,
    node_threads: usize,
    probe_interval: u64,
    progress: Option<Progress>,
    fetch: bool,
    cache: Option<Arc<ResultCache>>,
}

impl Session {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The serializable job description of this session: every field a
    /// [`crate::SessionSpec`] names, reconstructed from the validated state.
    /// Lossless: `session.spec().to_builder().build()` reproduces an
    /// equivalent session, and the spec's canonical form is this session's
    /// cache fingerprint input.
    pub fn spec(&self) -> crate::SessionSpec {
        crate::SessionSpec {
            workload: self.workload.clone(),
            config: self.config,
            faults: self.faults.clone(),
            telemetry: self.telemetry,
            probe_interval: self.probe_interval,
            fetch: self.fetch,
            exec: crate::spec::ExecSpec {
                step_threads: self.step_threads,
                node_threads: self.node_threads,
                fast_forward: self.fast_forward,
            },
        }
    }

    /// The canonical cache key for this session: the canonical JSON form of
    /// [`Session::spec`] — every execution-relevant input in a fixed field
    /// order, with large index/value arrays folded in as SHA-256 digests.
    /// Execution-irrelevant knobs (thread counts, fast-forward, progress
    /// sinks) are excluded — the byte-identity contract proves they cannot
    /// change the report.
    pub fn fingerprint(&self) -> Fingerprint {
        self.spec().fingerprint()
    }

    /// Run the workload to completion.
    ///
    /// Deterministic: the report is a pure function of the session's
    /// configuration — identical across repeated runs, thread counts, and
    /// fast-forward settings (modulo `skipped_cycles`, which is wall-clock
    /// accounting).
    ///
    /// With a [`SessionBuilder::cache`] attached, a valid cached entry is
    /// returned without simulating anything; a miss (or a corrupt/stale
    /// entry, which is evicted) simulates and stores the result.
    ///
    /// # Panics
    ///
    /// Panics if the simulated machine deadlocks (cycle-limit guard), which
    /// indicates a simulator bug, not bad input.
    pub fn run(self) -> SessionReport {
        let Some(cache) = self.cache.clone() else {
            return self.run_uncached();
        };
        let fp = self.fingerprint();
        if let Some(report) = cache
            .lookup(&fp)
            .and_then(|payload| SessionReport::from_json(&payload).ok())
        {
            return report;
        }
        let report = self.run_uncached();
        // A full disk degrades to "no cache", never to a failed run.
        let _ = cache.store(&fp, &report.to_json());
        report
    }

    fn run_uncached(self) -> SessionReport {
        match self.workload {
            Workload::Histogram {
                base_word,
                ref indices,
            } => {
                let kernel = ScatterKernel::histogram(base_word, indices.clone());
                self.run_kernel(kernel)
            }
            Workload::Scatter(ref kernel) => {
                let kernel = kernel.clone();
                self.run_kernel(kernel)
            }
            Workload::MultiNode {
                nodes,
                network,
                combining,
                topology,
                ref trace,
                ref values,
            } => {
                let mut mn =
                    MultiNode::with_topology(self.config, nodes, network, combining, topology);
                if let Some(ff) = self.fast_forward {
                    mn.set_fast_forward(ff);
                }
                if let Some(plan) = &self.faults {
                    mn.set_fault_plan(plan);
                }
                let mut probe = self.introspect("multinode");
                let r = mn.run_trace_threads_probed(trace, values, self.step_threads, &mut probe);
                let len = trace.iter().copied().max().map_or(0, |m| m as usize + 1);
                let result = (0..len as u64)
                    .map(|w| mn.read_word(Addr::from_word_index(w)))
                    .collect();
                SessionReport {
                    cycles: r.cycles,
                    skipped_cycles: r.skipped_cycles,
                    node_stats: r.node_stats,
                    resilience: r.resilience,
                    result,
                    fetched: Vec::new(),
                    probe_lines: probe.recorder.take_lines(),
                    adds: r.adds,
                    sum_back_lines: r.sum_back_lines,
                }
            }
        }
    }

    /// Assemble the introspection bundle for a run: the session's probe
    /// cadence, its progress sink (falling back to the process-wide one),
    /// and no host profiler (profiling is a bench-binary concern).
    fn introspect(&self, label: &str) -> Introspect {
        let progress = match &self.progress {
            Some(p) => p.clone(),
            None => global_progress(),
        };
        let mut recorder = ProbeRecorder::every(self.probe_interval).with_label(label);
        recorder = recorder.with_sink(progress.clone());
        Introspect {
            recorder,
            progress,
            profiler: HostProfiler::off(),
        }
    }

    fn run_kernel(&self, kernel: ScatterKernel) -> SessionReport {
        let mut node = NodeMemSys::new(self.config, 0, false);
        if let Some(ff) = self.fast_forward {
            node.set_fast_forward(ff);
        }
        if self.node_threads > 0 {
            node.set_node_threads(self.node_threads);
        }
        if let Some(plan) = &self.faults {
            node.set_fault_plan(plan);
        }
        node.set_sample_interval(self.telemetry.sample_interval);
        node.set_req_sample(self.telemetry.req_sample);
        let len = kernel.indices.iter().copied().max().map_or(0, |m| m + 1);
        let base = kernel.base_word;
        let adds = kernel.indices.len() as u64;
        let mut probe = self.introspect("kernel");
        let run = drive_scatter_probed(node, &kernel, self.fetch, &mut probe);
        let resilience = run.stats.resilience;
        let result = (0..len)
            .map(|w| run.node.store().read_word(Addr::from_word_index(base + w)))
            .collect();
        SessionReport {
            cycles: run.cycles,
            skipped_cycles: run.skipped_cycles,
            node_stats: vec![run.stats],
            resilience,
            result,
            fetched: run.fetched,
            probe_lines: probe.recorder.take_lines(),
            adds,
            sum_back_lines: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(json: &str) -> FaultPlan {
        FaultPlan::parse(json).expect("valid plan")
    }

    #[test]
    fn builder_requires_a_workload() {
        assert!(Session::builder().build().unwrap_err().contains("workload"));
    }

    #[test]
    fn report_json_round_trip_is_exact() {
        let report = Session::builder()
            .workload(Workload::Histogram {
                base_word: 3,
                indices: (0..700u64).map(|i| (i * 17) % 96).collect(),
            })
            .probe(256)
            .fetch(true)
            .build()
            .expect("valid")
            .run();
        assert!(!report.probe_lines.is_empty());
        assert!(!report.fetched.is_empty());
        let doc = report.to_json();
        let back = SessionReport::from_json(&doc).expect("round trip");
        assert_eq!(back, report);
        // And through actual bytes.
        let reparsed = Json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(SessionReport::from_json(&reparsed).unwrap(), report);
    }

    #[test]
    fn cached_session_reproduces_the_run_without_simulating() {
        let dir = std::env::temp_dir().join(format!("sa-session-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(ResultCache::open(&dir).expect("cache dir"));
        let build = || {
            Session::builder()
                .workload(Workload::MultiNode {
                    nodes: 2,
                    network: NetworkConfig::low(),
                    combining: true,
                    topology: Topology::Flat,
                    trace: (0..400u64).map(|i| (i * 29) % 128).collect(),
                    values: (0..400).map(|i| 0.5 + (i % 5) as f64).collect(),
                })
                .cache(Arc::clone(&cache))
                .build()
                .expect("valid")
        };
        let cold = build().run();
        assert_eq!((cache.hits(), cache.misses(), cache.stores()), (0, 1, 1));
        let warm = build().run();
        assert_eq!(warm, cold, "a hit must reproduce the run exactly");
        assert_eq!((cache.hits(), cache.misses(), cache.stores()), (1, 1, 1));
        // Uncached run agrees byte-for-byte, proving the cache is exact.
        let uncached = Session::builder()
            .workload(Workload::MultiNode {
                nodes: 2,
                network: NetworkConfig::low(),
                combining: true,
                topology: Topology::Flat,
                trace: (0..400u64).map(|i| (i * 29) % 128).collect(),
                values: (0..400).map(|i| 0.5 + (i % 5) as f64).collect(),
            })
            .build()
            .expect("valid")
            .run();
        assert_eq!(uncached, cold);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_excludes_execution_irrelevant_knobs() {
        let workload = Workload::Histogram {
            base_word: 0,
            indices: vec![1, 2, 3],
        };
        let base = Session::builder()
            .workload(workload.clone())
            .build()
            .unwrap()
            .fingerprint()
            .digest();
        let threaded = Session::builder()
            .workload(workload.clone())
            .step_threads(4)
            .node_threads(4)
            .fast_forward(false)
            .build()
            .unwrap()
            .fingerprint()
            .digest();
        assert_eq!(base, threaded, "thread/ff knobs must not change the key");
        let other = Session::builder()
            .workload(Workload::Histogram {
                base_word: 0,
                indices: vec![1, 2, 4],
            })
            .build()
            .unwrap()
            .fingerprint()
            .digest();
        assert_ne!(base, other, "workload bytes must change the key");
        let fetched = Session::builder()
            .workload(workload)
            .fetch(true)
            .build()
            .unwrap()
            .fingerprint()
            .digest();
        assert_ne!(base, fetched, "fetch mode changes the report, so the key");
    }

    #[test]
    fn builder_validates_lengths_and_topology() {
        let err = Session::builder()
            .workload(Workload::MultiNode {
                nodes: 3,
                network: NetworkConfig::low(),
                combining: true,
                topology: Topology::Hypercube,
                trace: vec![0],
                values: vec![1.0],
            })
            .build()
            .unwrap_err();
        assert!(err.contains("power-of-two"), "{err}");
        let err = Session::builder()
            .workload(Workload::MultiNode {
                nodes: 2,
                network: NetworkConfig::low(),
                combining: false,
                topology: Topology::Flat,
                trace: vec![0, 1],
                values: vec![1.0],
            })
            .build()
            .unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn histogram_session_matches_reference() {
        let indices = vec![0, 1, 1, 2, 1, 4, 4];
        let report = Session::builder()
            .workload(Workload::Histogram {
                base_word: 0,
                indices,
            })
            .build()
            .expect("valid")
            .run();
        assert_eq!(report.result, [1, 3, 1, 0, 2]);
        assert!(report.resilience.is_zero());
        assert!(report.cycles > 0);
    }

    #[test]
    fn report_exposes_bottleneck_attribution() {
        // Single node: the report groups under one "session" scope.
        let report = Session::builder()
            .workload(Workload::Histogram {
                base_word: 0,
                indices: (0..2048u64).map(|i| (i * 11) % 64).collect(),
            })
            .build()
            .expect("valid")
            .run();
        let section = report.bottleneck().expect("occupancy counters present");
        let run = section.get("session").expect("one report per session");
        let bound = run
            .get("bound")
            .and_then(sa_telemetry::Json::as_str)
            .expect("classified");
        assert!(sa_telemetry::BOUND_KINDS.contains(&bound), "{bound}");
        assert!(run.get("resources").is_some());

        // Multi node: per-node scopes fold into the same single report.
        let report = Session::builder()
            .workload(Workload::MultiNode {
                nodes: 2,
                network: NetworkConfig::low(),
                combining: false,
                topology: Topology::Flat,
                trace: (0..600u64).map(|i| (i * 13) % 128).collect(),
                values: vec![1.0; 600],
            })
            .build()
            .expect("valid")
            .run();
        let section = report.bottleneck().expect("multinode occupancy");
        assert!(section.get("session").is_some());
        assert_eq!(
            section.as_obj().map(<[_]>::len),
            Some(1),
            "node scopes must group into one session report"
        );
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_none() {
        let workload = Workload::Histogram {
            base_word: 0,
            indices: (0..512u64).map(|i| (i * 7) % 97).collect(),
        };
        let run = |faults: Option<FaultPlan>| {
            let mut b = Session::builder().workload(workload.clone());
            if let Some(p) = faults {
                b = b.faults(p);
            }
            b.build().expect("valid").run()
        };
        let none = run(None);
        let empty = run(Some(FaultPlan::empty()));
        assert_eq!(
            none, empty,
            "empty plan must cost nothing and change nothing"
        );
    }

    #[test]
    fn recoverable_faults_leave_results_bit_identical() {
        let workload = Workload::MultiNode {
            nodes: 4,
            network: NetworkConfig::low(),
            combining: false,
            topology: Topology::Flat,
            trace: (0..1500u64).map(|i| (i * 13) % 256).collect(),
            values: (0..1500).map(|i| 1.0 + (i % 7) as f64 * 0.125).collect(),
        };
        let run = |faults: Option<FaultPlan>, threads: usize| {
            let mut b = Session::builder()
                .workload(workload.clone())
                .step_threads(threads);
            if let Some(p) = faults {
                b = b.faults(p);
            }
            b.build().expect("valid").run()
        };
        let p = plan(
            r#"{"schema":"sa-faultplan","version":1,"seed":5,"cs_timeout":32,"faults":[
                {"kind":"net_nack","period":4,"max":30},
                {"kind":"net_drop","period":9,"max":15},
                {"kind":"ecc_single","period":6}
            ]}"#,
        );
        let clean = run(None, 1);
        let faulty = run(Some(p.clone()), 1);
        assert!(faulty.resilience.net_nacks > 0);
        assert!(faulty.resilience.net_dropped > 0);
        assert_eq!(
            clean.result, faulty.result,
            "recoverable faults must not change application results"
        );
        assert!(faulty.cycles > clean.cycles, "recovery costs cycles");
        // And the faulty run itself is deterministic across thread counts.
        let faulty3 = run(Some(p), 3);
        assert_eq!(faulty, faulty3);
    }
}
