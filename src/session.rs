//! The [`Session`] builder — one front door to the whole simulator.
//!
//! Historically each entry point was a separate free function with its own
//! argument list (`drive_scatter`, `MultiNode::run_trace`, ...), and
//! cross-cutting concerns — telemetry sampling, fast-forward, fault
//! injection — were configured through per-type setters or process-wide
//! defaults. A `Session` names every knob once and validates the
//! combination before anything runs:
//!
//! ```
//! use scatter_add_repro::{Session, Workload};
//!
//! let report = Session::builder()
//!     .workload(Workload::Histogram {
//!         base_word: 0,
//!         indices: vec![0, 1, 1, 2, 1],
//!     })
//!     .build()
//!     .expect("valid session")
//!     .run();
//! assert_eq!(report.result[..3], [1, 3, 1]);
//! ```
//!
//! Fault plans installed with [`SessionBuilder::faults`] apply to exactly
//! this session's machines (never through the process-wide default), so
//! concurrent sessions with different plans do not interfere.

use sa_core::{drive_scatter_probed, NodeMemSys, NodeStats, ScatterKernel};
use sa_faults::{FaultPlan, ResilienceStats};
use sa_multinode::{MultiNode, Topology};
use sa_sim::{Addr, MachineConfig, NetworkConfig};
use sa_telemetry::{global_progress, HostProfiler, Introspect, ProbeRecorder, Progress};

/// What a [`Session`] simulates.
#[derive(Clone, Debug)]
pub enum Workload {
    /// A histogram: every index contributes `+1` (integer scatter-add) to
    /// `base_word + index`.
    Histogram {
        /// First word of the result array.
        base_word: u64,
        /// The index trace.
        indices: Vec<u64>,
    },
    /// An arbitrary single-node scatter kernel (any scalar kind/op).
    Scatter(ScatterKernel),
    /// A floating-point scatter-add trace distributed over several nodes.
    MultiNode {
        /// Node count (a power of two under [`Topology::Hypercube`]).
        nodes: usize,
        /// Inter-node fabric parameters.
        network: NetworkConfig,
        /// Whether remote requests combine in the local cache (sum-back).
        combining: bool,
        /// Sum-back routing topology.
        topology: Topology,
        /// Target word indices.
        trace: Vec<u64>,
        /// One f64 addend per trace entry.
        values: Vec<f64>,
    },
}

/// Telemetry knobs for a session (see `docs/OBSERVABILITY.md`).
#[derive(Copy, Clone, Debug, Default)]
pub struct Telemetry {
    /// Cycle-series sampling interval (0 disables sampling).
    pub sample_interval: u64,
    /// Request-lifecycle sampling: one in `req_sample` requests gets a full
    /// stage-by-stage timeline (0 disables request tracing).
    pub req_sample: u64,
}

/// Everything a finished session reports.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionReport {
    /// Simulated cycles to completion.
    pub cycles: u64,
    /// Cycles the scheduler fast-forwarded over (wall-clock accounting
    /// only; every other field is byte-identical with skipping off).
    pub skipped_cycles: u64,
    /// Machine statistics, one entry per node.
    pub node_stats: Vec<NodeStats>,
    /// Merged fault-recovery counters (all zero without a fault plan).
    pub resilience: ResilienceStats,
    /// Raw bits of the result array, `base..base + len` words.
    pub result: Vec<u64>,
    /// Pre-op values returned by fetch-ops, in completion order (empty
    /// unless [`SessionBuilder::fetch`] was set; single-node only).
    pub fetched: Vec<(u64, u64)>,
    /// `sa-probe` snapshot lines (compact JSON, one per cadence point;
    /// empty unless [`SessionBuilder::probe`] set an interval). At a fixed
    /// interval these bytes are identical across step-thread counts and
    /// fast-forward settings, except for the `skipped_cycles` field each
    /// line carries.
    pub probe_lines: Vec<String>,
    /// Application scatter-add operations performed (the workload length).
    pub adds: u64,
    /// Sum-back lines that crossed the network (multinode combining runs;
    /// 0 otherwise).
    pub sum_back_lines: u64,
}

impl SessionReport {
    /// Simulated execution time in microseconds at 1 GHz.
    pub fn micros(&self) -> f64 {
        self.cycles as f64 / 1e3
    }

    /// The result array reinterpreted as signed integers (for integer
    /// workloads such as [`Workload::Histogram`]).
    pub fn result_i64(&self) -> Vec<i64> {
        self.result.iter().map(|&b| b as i64).collect()
    }

    /// The result array reinterpreted as doubles (for floating-point
    /// workloads).
    pub fn result_f64(&self) -> Vec<f64> {
        self.result.iter().map(|&b| f64::from_bits(b)).collect()
    }

    /// Scatter-add throughput in GB/s at `ghz`, the Figure 13 metric: one
    /// word of application data retired per add.
    pub fn throughput_gbps(&self, ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.adds as f64 * sa_sim::WORD_BYTES as f64 * ghz / self.cycles as f64
    }

    /// The bottleneck attribution report for this run: per-resource
    /// occupancy (busy / blocked / idle / saturated), the dominant-resource
    /// classification with utilization evidence, and the analytic what-if
    /// table — the `session` entry of a v5 `bottleneck` section (see
    /// `docs/OBSERVABILITY.md`). Render with
    /// [`sa_telemetry::render_bottleneck`]. `None` when the report carries
    /// no node statistics.
    pub fn bottleneck(&self) -> Option<sa_telemetry::Json> {
        use sa_telemetry::{Json, MetricsRegistry};
        if self.node_stats.is_empty() {
            return None;
        }
        let mut registry = MetricsRegistry::new();
        {
            let mut scope = registry.scope("session");
            scope.counter("cycles", self.cycles);
            if let [only] = self.node_stats.as_slice() {
                only.record(&mut scope);
            } else {
                for (i, ns) in self.node_stats.iter().enumerate() {
                    ns.record(&mut scope.scope(&format!("node{i}")));
                }
            }
        }
        let mut doc = Json::obj();
        doc.push("metrics", registry.to_json());
        sa_telemetry::bottleneck_json(&doc)
    }
}

/// Staged configuration for a [`Session`]; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct SessionBuilder {
    config: Option<MachineConfig>,
    workload: Option<Workload>,
    faults: Option<FaultPlan>,
    telemetry: Telemetry,
    fast_forward: Option<bool>,
    step_threads: usize,
    node_threads: usize,
    probe_interval: u64,
    progress: Option<Progress>,
    fetch: bool,
}

impl SessionBuilder {
    /// The machine configuration (defaults to
    /// [`MachineConfig::merrimac`], the paper's Table 1 machine).
    pub fn config(mut self, cfg: MachineConfig) -> SessionBuilder {
        self.config = Some(cfg);
        self
    }

    /// What to simulate. Required.
    pub fn workload(mut self, workload: Workload) -> SessionBuilder {
        self.workload = Some(workload);
        self
    }

    /// Inject faults from `plan` (see `docs/RESILIENCE.md`). An empty plan
    /// is equivalent to no plan: the run is byte-identical to fault-free.
    pub fn faults(mut self, plan: FaultPlan) -> SessionBuilder {
        self.faults = Some(plan);
        self
    }

    /// Telemetry sampling knobs (default: all sampling off).
    pub fn telemetry(mut self, telemetry: Telemetry) -> SessionBuilder {
        self.telemetry = telemetry;
        self
    }

    /// Force event-horizon fast-forward on or off (default: the
    /// process-wide setting, see [`sa_sim::set_fast_forward_default`]).
    pub fn fast_forward(mut self, enabled: bool) -> SessionBuilder {
        self.fast_forward = Some(enabled);
        self
    }

    /// Worker threads for phase-parallel multinode stepping (default 1;
    /// results are bit-identical for every value).
    pub fn step_threads(mut self, threads: usize) -> SessionBuilder {
        self.step_threads = threads.max(1);
        self
    }

    /// Worker threads stepping the bank lanes *within* a node — the third
    /// parallelism axis (see `docs/PARALLELISM.md`). Default: the
    /// process-wide [`sa_sim::node_threads_default`]. Results are
    /// byte-identical for every value. Single-node workloads only;
    /// multi-node machines already step each node on its own thread and
    /// ignore this.
    pub fn node_threads(mut self, threads: usize) -> SessionBuilder {
        self.node_threads = threads.max(1);
        self
    }

    /// Take an `sa-probe` component snapshot every `interval` simulated
    /// cycles (0, the default, disables probing). The snapshot lines land
    /// in [`SessionReport::probe_lines`] and stream to the progress sink
    /// when one is attached.
    pub fn probe(mut self, interval: u64) -> SessionBuilder {
        self.probe_interval = interval;
        self
    }

    /// Attach a live progress sink for heartbeats and probe streaming
    /// (default: the process-wide sink installed by
    /// [`sa_telemetry::set_global_progress`], off unless a `--progress` or
    /// `--probe-listen` flag enabled it).
    pub fn progress(mut self, progress: Progress) -> SessionBuilder {
        self.progress = Some(progress);
        self
    }

    /// Make every scatter request a fetch-op (§3.3): the pre-op value of
    /// each target word is returned in [`SessionReport::fetched`].
    /// Single-node workloads only.
    pub fn fetch(mut self, enabled: bool) -> SessionBuilder {
        self.fetch = enabled;
        self
    }

    /// Validate the combination and produce a runnable [`Session`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: no workload, an empty
    /// machine, mismatched trace/values lengths, a zero node count, or a
    /// non-power-of-two hypercube.
    pub fn build(self) -> Result<Session, String> {
        let workload = self.workload.ok_or("no workload: call .workload(..)")?;
        match &workload {
            Workload::Histogram { indices, .. } => {
                if indices.is_empty() {
                    return Err("histogram workload has no indices".into());
                }
            }
            Workload::Scatter(kernel) => {
                if kernel.indices.len() != kernel.values.len() {
                    return Err(format!(
                        "scatter kernel length mismatch: {} indices vs {} values",
                        kernel.indices.len(),
                        kernel.values.len()
                    ));
                }
            }
            Workload::MultiNode {
                nodes,
                topology,
                trace,
                values,
                ..
            } => {
                if *nodes == 0 {
                    return Err("multinode workload needs at least one node".into());
                }
                if *topology == Topology::Hypercube && !nodes.is_power_of_two() {
                    return Err(format!(
                        "hypercube needs a power-of-two node count, got {nodes}"
                    ));
                }
                if trace.len() != values.len() {
                    return Err(format!(
                        "trace length mismatch: {} indices vs {} values",
                        trace.len(),
                        values.len()
                    ));
                }
                if self.fetch {
                    return Err("fetch-ops are single-node only (§3.3)".into());
                }
            }
        }
        Ok(Session {
            config: self.config.unwrap_or_else(MachineConfig::merrimac),
            workload,
            faults: self.faults,
            telemetry: self.telemetry,
            fast_forward: self.fast_forward,
            step_threads: self.step_threads.max(1),
            node_threads: self.node_threads,
            probe_interval: self.probe_interval,
            progress: self.progress,
            fetch: self.fetch,
        })
    }
}

/// A validated, runnable simulation; built by [`Session::builder`].
#[derive(Clone, Debug)]
pub struct Session {
    config: MachineConfig,
    workload: Workload,
    faults: Option<FaultPlan>,
    telemetry: Telemetry,
    fast_forward: Option<bool>,
    step_threads: usize,
    node_threads: usize,
    probe_interval: u64,
    progress: Option<Progress>,
    fetch: bool,
}

impl Session {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Run the workload to completion.
    ///
    /// Deterministic: the report is a pure function of the session's
    /// configuration — identical across repeated runs, thread counts, and
    /// fast-forward settings (modulo `skipped_cycles`, which is wall-clock
    /// accounting).
    ///
    /// # Panics
    ///
    /// Panics if the simulated machine deadlocks (cycle-limit guard), which
    /// indicates a simulator bug, not bad input.
    pub fn run(self) -> SessionReport {
        match self.workload {
            Workload::Histogram {
                base_word,
                ref indices,
            } => {
                let kernel = ScatterKernel::histogram(base_word, indices.clone());
                self.run_kernel(kernel)
            }
            Workload::Scatter(ref kernel) => {
                let kernel = kernel.clone();
                self.run_kernel(kernel)
            }
            Workload::MultiNode {
                nodes,
                network,
                combining,
                topology,
                ref trace,
                ref values,
            } => {
                let mut mn =
                    MultiNode::with_topology(self.config, nodes, network, combining, topology);
                if let Some(ff) = self.fast_forward {
                    mn.set_fast_forward(ff);
                }
                if let Some(plan) = &self.faults {
                    mn.set_fault_plan(plan);
                }
                let mut probe = self.introspect("multinode");
                let r = mn.run_trace_threads_probed(trace, values, self.step_threads, &mut probe);
                let len = trace.iter().copied().max().map_or(0, |m| m as usize + 1);
                let result = (0..len as u64)
                    .map(|w| mn.read_word(Addr::from_word_index(w)))
                    .collect();
                SessionReport {
                    cycles: r.cycles,
                    skipped_cycles: r.skipped_cycles,
                    node_stats: r.node_stats,
                    resilience: r.resilience,
                    result,
                    fetched: Vec::new(),
                    probe_lines: probe.recorder.take_lines(),
                    adds: r.adds,
                    sum_back_lines: r.sum_back_lines,
                }
            }
        }
    }

    /// Assemble the introspection bundle for a run: the session's probe
    /// cadence, its progress sink (falling back to the process-wide one),
    /// and no host profiler (profiling is a bench-binary concern).
    fn introspect(&self, label: &str) -> Introspect {
        let progress = match &self.progress {
            Some(p) => p.clone(),
            None => global_progress(),
        };
        let mut recorder = ProbeRecorder::every(self.probe_interval).with_label(label);
        recorder = recorder.with_sink(progress.clone());
        Introspect {
            recorder,
            progress,
            profiler: HostProfiler::off(),
        }
    }

    fn run_kernel(&self, kernel: ScatterKernel) -> SessionReport {
        let mut node = NodeMemSys::new(self.config, 0, false);
        if let Some(ff) = self.fast_forward {
            node.set_fast_forward(ff);
        }
        if self.node_threads > 0 {
            node.set_node_threads(self.node_threads);
        }
        if let Some(plan) = &self.faults {
            node.set_fault_plan(plan);
        }
        node.set_sample_interval(self.telemetry.sample_interval);
        node.set_req_sample(self.telemetry.req_sample);
        let len = kernel.indices.iter().copied().max().map_or(0, |m| m + 1);
        let base = kernel.base_word;
        let adds = kernel.indices.len() as u64;
        let mut probe = self.introspect("kernel");
        let run = drive_scatter_probed(node, &kernel, self.fetch, &mut probe);
        let resilience = run.stats.resilience;
        let result = (0..len)
            .map(|w| run.node.store().read_word(Addr::from_word_index(base + w)))
            .collect();
        SessionReport {
            cycles: run.cycles,
            skipped_cycles: run.skipped_cycles,
            node_stats: vec![run.stats],
            resilience,
            result,
            fetched: run.fetched,
            probe_lines: probe.recorder.take_lines(),
            adds,
            sum_back_lines: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(json: &str) -> FaultPlan {
        FaultPlan::parse(json).expect("valid plan")
    }

    #[test]
    fn builder_requires_a_workload() {
        assert!(Session::builder().build().unwrap_err().contains("workload"));
    }

    #[test]
    fn builder_validates_lengths_and_topology() {
        let err = Session::builder()
            .workload(Workload::MultiNode {
                nodes: 3,
                network: NetworkConfig::low(),
                combining: true,
                topology: Topology::Hypercube,
                trace: vec![0],
                values: vec![1.0],
            })
            .build()
            .unwrap_err();
        assert!(err.contains("power-of-two"), "{err}");
        let err = Session::builder()
            .workload(Workload::MultiNode {
                nodes: 2,
                network: NetworkConfig::low(),
                combining: false,
                topology: Topology::Flat,
                trace: vec![0, 1],
                values: vec![1.0],
            })
            .build()
            .unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn histogram_session_matches_reference() {
        let indices = vec![0, 1, 1, 2, 1, 4, 4];
        let report = Session::builder()
            .workload(Workload::Histogram {
                base_word: 0,
                indices,
            })
            .build()
            .expect("valid")
            .run();
        assert_eq!(report.result, [1, 3, 1, 0, 2]);
        assert!(report.resilience.is_zero());
        assert!(report.cycles > 0);
    }

    #[test]
    fn report_exposes_bottleneck_attribution() {
        // Single node: the report groups under one "session" scope.
        let report = Session::builder()
            .workload(Workload::Histogram {
                base_word: 0,
                indices: (0..2048u64).map(|i| (i * 11) % 64).collect(),
            })
            .build()
            .expect("valid")
            .run();
        let section = report.bottleneck().expect("occupancy counters present");
        let run = section.get("session").expect("one report per session");
        let bound = run
            .get("bound")
            .and_then(sa_telemetry::Json::as_str)
            .expect("classified");
        assert!(sa_telemetry::BOUND_KINDS.contains(&bound), "{bound}");
        assert!(run.get("resources").is_some());

        // Multi node: per-node scopes fold into the same single report.
        let report = Session::builder()
            .workload(Workload::MultiNode {
                nodes: 2,
                network: NetworkConfig::low(),
                combining: false,
                topology: Topology::Flat,
                trace: (0..600u64).map(|i| (i * 13) % 128).collect(),
                values: vec![1.0; 600],
            })
            .build()
            .expect("valid")
            .run();
        let section = report.bottleneck().expect("multinode occupancy");
        assert!(section.get("session").is_some());
        assert_eq!(
            section.as_obj().map(<[_]>::len),
            Some(1),
            "node scopes must group into one session report"
        );
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_none() {
        let workload = Workload::Histogram {
            base_word: 0,
            indices: (0..512u64).map(|i| (i * 7) % 97).collect(),
        };
        let run = |faults: Option<FaultPlan>| {
            let mut b = Session::builder().workload(workload.clone());
            if let Some(p) = faults {
                b = b.faults(p);
            }
            b.build().expect("valid").run()
        };
        let none = run(None);
        let empty = run(Some(FaultPlan::empty()));
        assert_eq!(
            none, empty,
            "empty plan must cost nothing and change nothing"
        );
    }

    #[test]
    fn recoverable_faults_leave_results_bit_identical() {
        let workload = Workload::MultiNode {
            nodes: 4,
            network: NetworkConfig::low(),
            combining: false,
            topology: Topology::Flat,
            trace: (0..1500u64).map(|i| (i * 13) % 256).collect(),
            values: (0..1500).map(|i| 1.0 + (i % 7) as f64 * 0.125).collect(),
        };
        let run = |faults: Option<FaultPlan>, threads: usize| {
            let mut b = Session::builder()
                .workload(workload.clone())
                .step_threads(threads);
            if let Some(p) = faults {
                b = b.faults(p);
            }
            b.build().expect("valid").run()
        };
        let p = plan(
            r#"{"schema":"sa-faultplan","version":1,"seed":5,"cs_timeout":32,"faults":[
                {"kind":"net_nack","period":4,"max":30},
                {"kind":"net_drop","period":9,"max":15},
                {"kind":"ecc_single","period":6}
            ]}"#,
        );
        let clean = run(None, 1);
        let faulty = run(Some(p.clone()), 1);
        assert!(faulty.resilience.net_nacks > 0);
        assert!(faulty.resilience.net_dropped > 0);
        assert_eq!(
            clean.result, faulty.result,
            "recoverable faults must not change application results"
        );
        assert!(faulty.cycles > clean.cycles, "recovery costs cycles");
        // And the faulty run itself is deterministic across thread counts.
        let faulty3 = run(Some(p), 3);
        assert_eq!(faulty, faulty3);
    }
}
