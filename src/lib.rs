//! Reproduction of "Scatter-Add in Data Parallel Architectures" (HPCA 2005).
//!
//! The front door is the [`Session`] builder: name a workload, optionally a
//! machine configuration, a fault plan, and telemetry knobs, then `run()`:
//!
//! ```
//! use scatter_add_repro::{Session, Workload};
//!
//! let report = Session::builder()
//!     .workload(Workload::Histogram {
//!         base_word: 0,
//!         indices: vec![3, 1, 3],
//!     })
//!     .build()?
//!     .run();
//! assert_eq!(report.result, [0, 1, 0, 2]);
//! # Ok::<(), String>(())
//! ```
//!
//! Everything underneath remains public through the `sa-*` crates (and the
//! re-exports below) for callers that need a specific layer: `sa-sim` for
//! configs and clocks, `sa-core` for the single-node machine, `sa-multinode`
//! for the distributed fabric, `sa-faults` for fault plans, `sa-telemetry`
//! for stats export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod session;

pub use sa_core::{scatter_reference, NodeStats, RunResult, ScatterKernel};
pub use sa_faults::{FaultPlan, ResilienceStats};
pub use sa_memo::{Fingerprint, ResultCache};
pub use sa_multinode::Topology;
pub use sa_sim::{MachineConfig, NetworkConfig};
pub use session::{Session, SessionBuilder, SessionReport, Telemetry, Workload};

/// Run a scatter kernel on a fresh single-node machine.
#[deprecated(note = "use Session::builder().workload(Workload::Scatter(..))")]
pub fn drive_scatter(cfg: &MachineConfig, kernel: &ScatterKernel, fetch: bool) -> RunResult {
    sa_core::drive_scatter(cfg, kernel, fetch)
}

/// Run a scatter-add trace over `nodes` nodes and return total cycles.
#[deprecated(note = "use Session::builder().workload(Workload::MultiNode { .. })")]
pub fn run_trace(
    cfg: &MachineConfig,
    nodes: usize,
    network: NetworkConfig,
    combining: bool,
    trace: &[u64],
    values: &[f64],
) -> u64 {
    sa_multinode::MultiNode::new(cfg.to_owned(), nodes, network, combining)
        .run_trace(trace, values)
        .cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_agree_with_the_session_api() {
        let indices: Vec<u64> = (0..256u64).map(|i| (i * 11) % 64).collect();
        let kernel = ScatterKernel::histogram(0, indices.clone());
        let old = drive_scatter(&MachineConfig::merrimac(), &kernel, false);
        let new = Session::builder()
            .workload(Workload::Histogram {
                base_word: 0,
                indices,
            })
            .build()
            .expect("valid")
            .run();
        assert_eq!(old.cycles, new.cycles);
        assert_eq!(vec![old.stats], new.node_stats);
    }
}
