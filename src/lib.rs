//! Reproduction of "Scatter-Add in Data Parallel Architectures" (HPCA 2005).
//!
//! The front door is the [`Session`] builder: name a workload, optionally a
//! machine configuration, a fault plan, and telemetry knobs, then `run()`:
//!
//! ```
//! use scatter_add_repro::{Session, Workload};
//!
//! let report = Session::builder()
//!     .workload(Workload::Histogram {
//!         base_word: 0,
//!         indices: vec![3, 1, 3],
//!     })
//!     .build()?
//!     .run();
//! assert_eq!(report.result, [0, 1, 0, 2]);
//! # Ok::<(), String>(())
//! ```
//!
//! A session is also nameable as data: [`SessionSpec`] is the versioned
//! JSON wire form of everything a builder chain expresses — the job
//! description the CLI (`--spec FILE`), the `sa-serve` HTTP daemon, and the
//! result-cache fingerprint all share (see `docs/SERVING.md`).
//!
//! Everything underneath remains public through the `sa-*` crates (and the
//! re-exports below) for callers that need a specific layer: `sa-sim` for
//! configs and clocks, `sa-core` for the single-node machine, `sa-multinode`
//! for the distributed fabric, `sa-faults` for fault plans, `sa-telemetry`
//! for stats export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod session;
pub mod spec;

pub use sa_core::{scatter_reference, NodeStats, RunResult, ScatterKernel};
pub use sa_faults::{FaultPlan, ResilienceStats};
pub use sa_memo::{Fingerprint, ResultCache};
pub use sa_multinode::Topology;
pub use sa_sim::{MachineConfig, NetworkConfig};
pub use session::{Session, SessionBuilder, SessionReport, Telemetry, Workload};
pub use spec::{ExecSpec, SessionSpec, SPEC_SCHEMA_NAME, SPEC_SCHEMA_VERSION};

#[cfg(test)]
mod tests {
    use super::*;

    // The deprecated `drive_scatter`/`run_trace` free functions are gone;
    // the layer they wrapped stays reachable through the `sa-*` crates, and
    // this pins the equivalence the old wrapper test asserted: driving the
    // core crate directly agrees with the `Session` front door.
    #[test]
    fn core_driver_agrees_with_the_session_api() {
        let indices: Vec<u64> = (0..256u64).map(|i| (i * 11) % 64).collect();
        let kernel = ScatterKernel::histogram(0, indices.clone());
        let old = sa_core::drive_scatter(&MachineConfig::merrimac(), &kernel, false);
        let new = Session::builder()
            .workload(Workload::Histogram {
                base_word: 0,
                indices,
            })
            .build()
            .expect("valid")
            .run();
        assert_eq!(old.cycles, new.cycles);
        assert_eq!(vec![old.stats], new.node_stats);
    }
}
