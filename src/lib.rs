//! Reproduction of "Scatter-Add in Data Parallel Architectures" (HPCA 2005).
