//! [`SessionSpec`] — the serializable, versioned job description behind
//! [`Session`](crate::Session).
//!
//! Historically three surfaces each described "a run" in their own ad-hoc
//! vocabulary: the [`SessionBuilder`](crate::SessionBuilder) chain, the
//! `sa_bench::cli::Cli` flag set, and the result-cache fingerprint assembled
//! field by field inside `Session::fingerprint`. A `SessionSpec` is the one
//! canonical description all three lower to:
//!
//! * **Wire form** ([`SessionSpec::to_json`]) — a complete, executable JSON
//!   document (schema `sa-session-spec` v1) carrying the full workload
//!   arrays. `from_json(to_json(spec))` reproduces the spec exactly, and
//!   re-serializing yields byte-identical text, so a spec file is a stable
//!   artifact that can be committed, diffed, and POSTed to `sa-serve`.
//! * **Canonical form** ([`SessionSpec::canonical_json`]) — the wire form
//!   with the large index/value arrays folded into SHA-256 digests and the
//!   `exec` section dropped. This *is* the cache fingerprint input: the
//!   execution knobs (`step_threads`, `node_threads`, `fast_forward`) are
//!   excluded because the byte-identity contract proves they cannot change
//!   the report, so a warm query matches regardless of how the cold run was
//!   scheduled.
//!
//! ```
//! use scatter_add_repro::{SessionSpec, Workload};
//!
//! let spec = SessionSpec::new(Workload::Histogram {
//!     base_word: 0,
//!     indices: vec![3, 1, 3],
//! });
//! let text = spec.to_json().to_string_pretty();
//! let back = SessionSpec::from_json(&sa_telemetry::Json::parse(&text)?)?;
//! assert_eq!(back, spec);
//! let report = back.to_builder().build()?.run();
//! assert_eq!(report.result, [0, 1, 0, 2]);
//! # Ok::<(), String>(())
//! ```

use sa_faults::FaultPlan;
use sa_memo::{hash_f64s, hash_u64s, Fingerprint};
use sa_multinode::Topology;
use sa_sim::{MachineConfig, NetworkConfig, ScalarKind, ScatterOp};
use sa_telemetry::Json;

use crate::session::{SessionBuilder, Telemetry, Workload};
use sa_core::ScatterKernel;

/// Schema tag carried by every serialized spec.
pub const SPEC_SCHEMA_NAME: &str = "sa-session-spec";

/// Current (and only) spec schema version.
pub const SPEC_SCHEMA_VERSION: u64 = 1;

/// Execution knobs: how a run is scheduled on the host, never what it
/// computes. The byte-identity contract (see `docs/PARALLELISM.md` and
/// `docs/PERFORMANCE.md`) guarantees every combination produces the same
/// report (modulo `skipped_cycles`), which is why this whole section is
/// excluded from [`SessionSpec::canonical_json`] and hence from cache keys.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecSpec {
    /// Phase-parallel multinode stepping width (0 = default, i.e. 1).
    pub step_threads: usize,
    /// Intra-node bank-lane stepping width (0 = the process-wide default).
    pub node_threads: usize,
    /// Event-horizon fast-forward override (`None` = the process default).
    pub fast_forward: Option<bool>,
}

/// A versioned, canonical-JSON description of everything a
/// [`Session`](crate::Session) needs: workload, machine and network
/// configuration, fault plan, telemetry cadences, and execution knobs.
///
/// Round-trips losslessly to and from [`SessionBuilder`] (via
/// [`SessionSpec::to_builder`] and [`Session::spec`](crate::Session::spec)),
/// and its canonical form is the result-cache fingerprint input.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSpec {
    /// What to simulate.
    pub workload: Workload,
    /// The single-node machine description (every node in a multinode run).
    pub config: MachineConfig,
    /// Deterministic fault schedule, if any.
    pub faults: Option<FaultPlan>,
    /// Telemetry sampling cadences.
    pub telemetry: Telemetry,
    /// `sa-probe` snapshot cadence in simulated cycles (0 = off).
    pub probe_interval: u64,
    /// Whether every scatter request is a fetch-op (single-node only).
    pub fetch: bool,
    /// Host scheduling knobs (excluded from the canonical form).
    pub exec: ExecSpec,
}

impl SessionSpec {
    /// A spec for `workload` with the default machine and no extras.
    pub fn new(workload: Workload) -> SessionSpec {
        SessionSpec {
            workload,
            config: MachineConfig::merrimac(),
            faults: None,
            telemetry: Telemetry::default(),
            probe_interval: 0,
            fetch: false,
            exec: ExecSpec::default(),
        }
    }

    /// The complete wire form: schema header, workload with full arrays,
    /// flat config, fault plan, telemetry, and execution knobs. Serializing
    /// with [`Json::to_string_compact`] (or pretty) is deterministic, and
    /// [`SessionSpec::from_json`] restores an equal spec.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(SPEC_SCHEMA_NAME.to_string()));
        doc.push("version", Json::UInt(SPEC_SCHEMA_VERSION));
        doc.push("workload", workload_json(&self.workload));
        doc.push("config", self.config.fingerprint_json());
        doc.push("faults", faults_json(&self.faults));
        doc.push("telemetry", self.telemetry_json());
        doc.push("fetch", Json::Bool(self.fetch));
        let mut exec = Json::obj();
        exec.push("step_threads", Json::UInt(self.exec.step_threads as u64));
        exec.push("node_threads", Json::UInt(self.exec.node_threads as u64));
        exec.push(
            "fast_forward",
            Json::Str(
                match self.exec.fast_forward {
                    None => "default",
                    Some(true) => "on",
                    Some(false) => "off",
                }
                .to_string(),
            ),
        );
        doc.push("exec", exec);
        doc
    }

    /// The canonical form: the wire form with index/value arrays folded
    /// into SHA-256 digests (plus their lengths) and the `exec` section
    /// removed. Two specs with equal canonical forms produce byte-identical
    /// reports, so this document is the result-cache key payload.
    pub fn canonical_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(SPEC_SCHEMA_NAME.to_string()));
        doc.push("version", Json::UInt(SPEC_SCHEMA_VERSION));
        doc.push("workload", workload_canonical_json(&self.workload));
        doc.push("config", self.config.fingerprint_json());
        doc.push("faults", faults_json(&self.faults));
        doc.push("telemetry", self.telemetry_json());
        doc.push("fetch", Json::Bool(self.fetch));
        doc
    }

    fn telemetry_json(&self) -> Json {
        let mut t = Json::obj();
        t.push(
            "sample_interval",
            Json::UInt(self.telemetry.sample_interval),
        );
        t.push("req_sample", Json::UInt(self.telemetry.req_sample));
        t.push("probe_interval", Json::UInt(self.probe_interval));
        t
    }

    /// The result-cache fingerprint: the canonical form as the sole payload
    /// of a `"session"` cache key (see [`Fingerprint::for_payload`]).
    /// Equal for every builder chain, spec file, or HTTP job body that
    /// describes the same execution-relevant inputs.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::for_payload("session", self.canonical_json())
    }

    /// Parse a document written by [`SessionSpec::to_json`] (or authored by
    /// hand / `analyze mkspec`).
    ///
    /// Strict: the schema header must match, every section and field is
    /// required, and unknown keys anywhere are rejected — a typo in a job
    /// spec is an error, never a silently-applied default.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem. Semantic
    /// validation (lengths, topology, fetch mode) happens in
    /// [`SessionBuilder::build`] after [`SessionSpec::to_builder`].
    pub fn from_json(doc: &Json) -> Result<SessionSpec, String> {
        let mut top = Reader::new("spec", doc)?;
        let schema = top.str("schema")?;
        if schema != SPEC_SCHEMA_NAME {
            return Err(format!(
                "spec: schema is '{schema}', expected '{SPEC_SCHEMA_NAME}'"
            ));
        }
        let version = top.u64("version")?;
        if version != SPEC_SCHEMA_VERSION {
            return Err(format!(
                "spec: version is {version}, expected {SPEC_SCHEMA_VERSION}"
            ));
        }
        let workload = workload_from_json(top.get("workload")?)?;
        let config = MachineConfig::from_fingerprint_json(top.get("config")?)?;
        let faults = match top.get("faults")? {
            Json::Null => None,
            plan => Some(FaultPlan::parse(&plan.to_string_compact())?),
        };
        let mut tel = Reader::new("telemetry", top.get("telemetry")?)?;
        let telemetry = Telemetry {
            sample_interval: tel.u64("sample_interval")?,
            req_sample: tel.u64("req_sample")?,
        };
        let probe_interval = tel.u64("probe_interval")?;
        tel.finish()?;
        let fetch = top.bool("fetch")?;
        let mut exec = Reader::new("exec", top.get("exec")?)?;
        let exec_spec = ExecSpec {
            step_threads: exec.usize("step_threads")?,
            node_threads: exec.usize("node_threads")?,
            fast_forward: match exec.str("fast_forward")? {
                "default" => None,
                "on" => Some(true),
                "off" => Some(false),
                other => {
                    return Err(format!(
                        "exec: fast_forward is '{other}', expected default|on|off"
                    ))
                }
            },
        };
        exec.finish()?;
        top.finish()?;
        Ok(SessionSpec {
            workload,
            config,
            faults,
            telemetry,
            probe_interval,
            fetch,
            exec: exec_spec,
        })
    }

    /// Lower the spec into a [`SessionBuilder`] carrying every field.
    /// `to_builder().build()` validates the combination; a spec made by
    /// [`Session::spec`](crate::Session::spec) always builds.
    pub fn to_builder(&self) -> SessionBuilder {
        let mut b = SessionBuilder::default()
            .config(self.config)
            .workload(self.workload.clone())
            .telemetry(self.telemetry)
            .probe(self.probe_interval)
            .fetch(self.fetch);
        if let Some(plan) = &self.faults {
            b = b.faults(plan.clone());
        }
        if self.exec.step_threads > 0 {
            b = b.step_threads(self.exec.step_threads);
        }
        if self.exec.node_threads > 0 {
            b = b.node_threads(self.exec.node_threads);
        }
        if let Some(ff) = self.exec.fast_forward {
            b = b.fast_forward(ff);
        }
        b
    }
}

// ---------------------------------------------------------------------------
// Workload (de)serialization
// ---------------------------------------------------------------------------

fn u64_array(items: &[u64]) -> Json {
    Json::Arr(items.iter().map(|&v| Json::UInt(v)).collect())
}

fn scalar_name(kind: ScalarKind) -> &'static str {
    match kind {
        ScalarKind::F64 => "f64",
        ScalarKind::I64 => "i64",
    }
}

fn op_name(op: ScatterOp) -> &'static str {
    match op {
        ScatterOp::Add => "add",
        ScatterOp::Min => "min",
        ScatterOp::Max => "max",
        ScatterOp::Mul => "mul",
    }
}

fn topology_name(t: Topology) -> &'static str {
    match t {
        Topology::Flat => "flat",
        Topology::Hypercube => "hypercube",
    }
}

fn workload_json(w: &Workload) -> Json {
    let mut o = Json::obj();
    match w {
        Workload::Histogram { base_word, indices } => {
            o.push("kind", Json::Str("histogram".to_string()));
            o.push("base_word", Json::UInt(*base_word));
            o.push("indices", u64_array(indices));
        }
        Workload::Scatter(kernel) => {
            o.push("kind", Json::Str("scatter".to_string()));
            o.push("base_word", Json::UInt(kernel.base_word));
            o.push("scalar", Json::Str(scalar_name(kernel.kind).to_string()));
            o.push("op", Json::Str(op_name(kernel.op).to_string()));
            o.push("indices", u64_array(&kernel.indices));
            // Raw bit patterns: lossless for every f64 (including the
            // non-finite ones plain JSON numbers cannot carry) and exact
            // for i64 payloads, which already live as bits in the kernel.
            o.push("values_bits", u64_array(&kernel.values));
        }
        Workload::MultiNode {
            nodes,
            network,
            combining,
            topology,
            trace,
            values,
        } => {
            o.push("kind", Json::Str("multinode".to_string()));
            o.push("nodes", Json::UInt(*nodes as u64));
            o.push("network", network.fingerprint_json());
            o.push("combining", Json::Bool(*combining));
            o.push("topology", Json::Str(topology_name(*topology).to_string()));
            o.push("trace", u64_array(trace));
            o.push(
                "values",
                Json::Arr(values.iter().map(|&v| Json::Num(v)).collect()),
            );
        }
    }
    o
}

fn workload_canonical_json(w: &Workload) -> Json {
    let mut o = Json::obj();
    match w {
        Workload::Histogram { base_word, indices } => {
            o.push("kind", Json::Str("histogram".to_string()));
            o.push("base_word", Json::UInt(*base_word));
            o.push("n", Json::UInt(indices.len() as u64));
            o.push("indices_sha256", Json::Str(hash_u64s(indices)));
        }
        Workload::Scatter(kernel) => {
            o.push("kind", Json::Str("scatter".to_string()));
            o.push("base_word", Json::UInt(kernel.base_word));
            o.push("scalar", Json::Str(scalar_name(kernel.kind).to_string()));
            o.push("op", Json::Str(op_name(kernel.op).to_string()));
            o.push("n", Json::UInt(kernel.indices.len() as u64));
            o.push("indices_sha256", Json::Str(hash_u64s(&kernel.indices)));
            o.push("values_sha256", Json::Str(hash_u64s(&kernel.values)));
        }
        Workload::MultiNode {
            nodes,
            network,
            combining,
            topology,
            trace,
            values,
        } => {
            o.push("kind", Json::Str("multinode".to_string()));
            o.push("nodes", Json::UInt(*nodes as u64));
            o.push("network", network.fingerprint_json());
            o.push("combining", Json::Bool(*combining));
            o.push("topology", Json::Str(topology_name(*topology).to_string()));
            o.push("n", Json::UInt(trace.len() as u64));
            o.push("trace_sha256", Json::Str(hash_u64s(trace)));
            o.push("values_sha256", Json::Str(hash_f64s(values)));
        }
    }
    o
}

fn workload_from_json(doc: &Json) -> Result<Workload, String> {
    let mut r = Reader::new("workload", doc)?;
    let workload = match r.str("kind")? {
        "histogram" => Workload::Histogram {
            base_word: r.u64("base_word")?,
            indices: r.u64_array("indices")?,
        },
        "scatter" => {
            let base_word = r.u64("base_word")?;
            let kind = match r.str("scalar")? {
                "f64" => ScalarKind::F64,
                "i64" => ScalarKind::I64,
                other => return Err(format!("workload: scalar '{other}', expected f64|i64")),
            };
            let op = match r.str("op")? {
                "add" => ScatterOp::Add,
                "min" => ScatterOp::Min,
                "max" => ScatterOp::Max,
                "mul" => ScatterOp::Mul,
                other => return Err(format!("workload: op '{other}', expected add|min|max|mul")),
            };
            Workload::Scatter(ScatterKernel {
                base_word,
                indices: r.u64_array("indices")?,
                values: r.u64_array("values_bits")?,
                kind,
                op,
            })
        }
        "multinode" => Workload::MultiNode {
            nodes: r.usize("nodes")?,
            network: NetworkConfig::from_fingerprint_json(r.get("network")?)?,
            combining: r.bool("combining")?,
            topology: match r.str("topology")? {
                "flat" => Topology::Flat,
                "hypercube" => Topology::Hypercube,
                other => {
                    return Err(format!(
                        "workload: topology '{other}', expected flat|hypercube"
                    ))
                }
            },
            trace: r.u64_array("trace")?,
            values: r.f64_array("values")?,
        },
        other => {
            return Err(format!(
                "workload: kind '{other}', expected histogram|scatter|multinode"
            ))
        }
    };
    r.finish()?;
    Ok(workload)
}

fn faults_json(faults: &Option<FaultPlan>) -> Json {
    match faults {
        Some(plan) => plan.to_json(),
        None => Json::Null,
    }
}

// ---------------------------------------------------------------------------
// Strict object reader: every key consumed exactly once, leftovers rejected.
// ---------------------------------------------------------------------------

struct Reader<'a> {
    what: &'static str,
    pairs: &'a [(String, Json)],
    seen: Vec<&'a str>,
}

impl<'a> Reader<'a> {
    fn new(what: &'static str, doc: &'a Json) -> Result<Reader<'a>, String> {
        let pairs = doc
            .as_obj()
            .ok_or_else(|| format!("{what}: not a JSON object"))?;
        Ok(Reader {
            what,
            pairs,
            seen: Vec::new(),
        })
    }

    fn get(&mut self, key: &'a str) -> Result<&'a Json, String> {
        self.seen.push(key);
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("{}: missing field '{key}'", self.what))
    }

    fn str(&mut self, key: &'a str) -> Result<&'a str, String> {
        let what = self.what;
        self.get(key)?
            .as_str()
            .ok_or_else(|| format!("{what}: field '{key}' is not a string"))
    }

    fn u64(&mut self, key: &'a str) -> Result<u64, String> {
        let what = self.what;
        self.get(key)?
            .as_u64()
            .ok_or_else(|| format!("{what}: field '{key}' is not an unsigned integer"))
    }

    fn usize(&mut self, key: &'a str) -> Result<usize, String> {
        let what = self.what;
        let v = self.u64(key)?;
        usize::try_from(v).map_err(|_| format!("{what}: field '{key}' out of range"))
    }

    fn bool(&mut self, key: &'a str) -> Result<bool, String> {
        let what = self.what;
        self.get(key)?
            .as_bool()
            .ok_or_else(|| format!("{what}: field '{key}' is not a boolean"))
    }

    fn u64_array(&mut self, key: &'a str) -> Result<Vec<u64>, String> {
        let what = self.what;
        self.get(key)?
            .as_arr()
            .ok_or_else(|| format!("{what}: field '{key}' is not an array"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("{what}: '{key}' holds a non-u64 element"))
            })
            .collect()
    }

    fn f64_array(&mut self, key: &'a str) -> Result<Vec<f64>, String> {
        let what = self.what;
        self.get(key)?
            .as_arr()
            .ok_or_else(|| format!("{what}: field '{key}' is not an array"))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| format!("{what}: '{key}' holds a non-number element"))
            })
            .collect()
    }

    fn finish(self) -> Result<(), String> {
        for (k, _) in self.pairs {
            if !self.seen.contains(&k.as_str()) {
                return Err(format!("{}: unknown field '{k}'", self.what));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    fn multinode_spec() -> SessionSpec {
        let mut spec = SessionSpec::new(Workload::MultiNode {
            nodes: 4,
            network: NetworkConfig::low(),
            combining: true,
            topology: Topology::Hypercube,
            trace: (0..300u64).map(|i| (i * 7) % 64).collect(),
            values: (0..300).map(|i| 0.25 + (i % 3) as f64).collect(),
        });
        spec.telemetry = Telemetry {
            sample_interval: 128,
            req_sample: 16,
        };
        spec.probe_interval = 512;
        spec.exec = ExecSpec {
            step_threads: 3,
            node_threads: 2,
            fast_forward: Some(false),
        };
        spec
    }

    #[test]
    fn wire_form_round_trips_bytes() {
        for spec in [
            SessionSpec::new(Workload::Histogram {
                base_word: 5,
                indices: vec![1, 2, 2, 9],
            }),
            SessionSpec::new(Workload::Scatter(ScatterKernel::superposition(
                0,
                vec![0, 1, 0],
                &[1.5, -2.25, f64::NAN],
            ))),
            multinode_spec(),
        ] {
            let text = spec.to_json().to_string_compact();
            let back = SessionSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            // NaN-carrying kernels compare unequal as structs (NaN != NaN),
            // but the bit-level wire form must still be identical.
            assert_eq!(back.to_json().to_string_compact(), text);
        }
    }

    #[test]
    fn canonical_form_excludes_exec_knobs() {
        let mut a = multinode_spec();
        let mut b = a.clone();
        b.exec = ExecSpec::default();
        assert_ne!(a.to_json().to_string_compact(), {
            b.exec = ExecSpec {
                step_threads: 7,
                node_threads: 5,
                fast_forward: Some(true),
            };
            b.to_json().to_string_compact()
        });
        assert_eq!(
            a.canonical_json().to_string_compact(),
            b.canonical_json().to_string_compact()
        );
        assert_eq!(a.fingerprint().digest(), b.fingerprint().digest());
        // ...but every execution-relevant field changes the digest.
        a.fetch = true;
        assert_ne!(a.fingerprint().digest(), b.fingerprint().digest());
    }

    #[test]
    fn spec_fingerprint_matches_the_builder_chain() {
        let spec = multinode_spec();
        let session = spec.to_builder().build().expect("valid spec");
        assert_eq!(spec.fingerprint().digest(), session.fingerprint().digest());
        assert_eq!(session.spec(), spec, "lossless through Session");
    }

    #[test]
    fn strict_parsing_rejects_drift() {
        let good = multinode_spec().to_json();
        assert!(SessionSpec::from_json(&good).is_ok());

        let mut unknown = good.clone();
        unknown.push("surprise", Json::Bool(true));
        assert!(SessionSpec::from_json(&unknown)
            .unwrap_err()
            .contains("unknown field 'surprise'"));

        let text = good.to_string_compact();
        let wrong_version = text.replace("\"version\":1", "\"version\":99");
        assert!(
            SessionSpec::from_json(&Json::parse(&wrong_version).unwrap())
                .unwrap_err()
                .contains("version")
        );

        let bad_kind = text.replace("\"kind\":\"multinode\"", "\"kind\":\"frobnicate\"");
        assert!(SessionSpec::from_json(&Json::parse(&bad_kind).unwrap())
            .unwrap_err()
            .contains("kind"));

        assert!(SessionSpec::from_json(&Json::parse("[]").unwrap()).is_err());
    }

    #[test]
    fn spec_run_equals_builder_run() {
        let spec = SessionSpec::new(Workload::Histogram {
            base_word: 0,
            indices: (0..400u64).map(|i| (i * 13) % 96).collect(),
        });
        let from_spec = spec.to_builder().build().expect("valid").run();
        let direct = Session::builder()
            .workload(Workload::Histogram {
                base_word: 0,
                indices: (0..400u64).map(|i| (i * 13) % 96).collect(),
            })
            .build()
            .expect("valid")
            .run();
        assert_eq!(from_spec, direct);
    }

    #[test]
    fn fault_plans_ride_along() {
        let mut spec = SessionSpec::new(Workload::Histogram {
            base_word: 0,
            indices: vec![1, 2, 3],
        });
        spec.faults = Some(
            FaultPlan::parse(
                r#"{"schema":"sa-faultplan","version":1,"seed":9,
                    "faults":[{"kind":"ecc_single","period":5}]}"#,
            )
            .unwrap(),
        );
        let text = spec.to_json().to_string_compact();
        let back = SessionSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_ne!(
            spec.fingerprint().digest(),
            SessionSpec::new(Workload::Histogram {
                base_word: 0,
                indices: vec![1, 2, 3],
            })
            .fingerprint()
            .digest(),
            "a fault plan changes the cache key"
        );
    }
}
